package cache

import (
	"testing"

	"datalife/internal/sim"
	"datalife/internal/vfs"
)

func testCache(t *testing.T, l1, l2 int64) *Cache {
	t.Helper()
	c, err := New([]LevelSpec{
		{Name: "L1", Scope: TaskPrivate, Capacity: l1, LatencyS: 1e-7, ReadBW: 10e9, WriteBW: 10e9},
		{Name: "L2", Scope: NodeWide, Capacity: l2, LatencyS: 1e-6, ReadBW: 5e9, WriteBW: 5e9},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func origin() *vfs.Tier { return vfs.NewWAN("wan", 125e6) }

func sum(parts []sim.ReadPart) int64 {
	var s int64
	for _, p := range parts {
		s += p.Bytes
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 100); err == nil {
		t.Fatal("no levels accepted")
	}
	if _, err := New(TAZeRLevels(), 0); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := New([]LevelSpec{{Name: "x", Capacity: 10}}, 100); err == nil {
		t.Fatal("capacity below block size accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	c := testCache(t, 1000, 10000)
	o := origin()
	p1 := c.PlanRead("t1", "n1", "f", o, 0, 500)
	if sum(p1) != 500 {
		t.Fatalf("bytes = %d", sum(p1))
	}
	if len(p1) != 1 || p1[0].Tier != o {
		t.Fatalf("cold read should come from origin: %+v", p1)
	}
	p2 := c.PlanRead("t1", "n1", "f", o, 0, 500)
	if len(p2) != 1 || p2[0].Tier == o {
		t.Fatalf("warm read should hit cache: %+v", p2)
	}
	if p2[0].Tier.Name != "tazer-L1@n1" {
		t.Fatalf("warm read tier = %s, want L1", p2[0].Tier.Name)
	}
}

func TestNodeWideSharing(t *testing.T) {
	c := testCache(t, 1000, 10000)
	o := origin()
	c.PlanRead("t1", "n1", "f", o, 0, 500)
	// Different task, same node: L1 (private) misses, L2 (node) hits.
	p := c.PlanRead("t2", "n1", "f", o, 0, 500)
	if len(p) != 1 || p[0].Tier.Name != "tazer-L2@n1" {
		t.Fatalf("expected L2 hit, got %+v", p)
	}
	// Different node: full miss.
	p = c.PlanRead("t3", "n2", "f", o, 0, 500)
	if len(p) != 1 || p[0].Tier != o {
		t.Fatalf("expected origin on other node, got %+v", p)
	}
}

func TestClusterWideSharing(t *testing.T) {
	c, err := New([]LevelSpec{
		{Name: "L4", Scope: ClusterWide, Capacity: 1 << 20, LatencyS: 1e-3, ReadBW: 2e9, WriteBW: 1e9},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	o := origin()
	c.PlanRead("t1", "n1", "f", o, 0, 300)
	p := c.PlanRead("t9", "n7", "f", o, 0, 300)
	if len(p) != 1 || p[0].Tier.Name != "tazer-L4" {
		t.Fatalf("cluster level should hit across nodes: %+v", p)
	}
	if !p[0].Tier.Shared {
		t.Fatal("cluster tier must be shared")
	}
}

func TestLRUEviction(t *testing.T) {
	// L1 holds 3 blocks of 100.
	c := testCache(t, 300, 300)
	o := origin()
	c.PlanRead("t", "n", "f", o, 0, 300)   // blocks 0,1,2 cached
	c.PlanRead("t", "n", "f", o, 300, 100) // block 3 evicts block 0
	p := c.PlanRead("t", "n", "f", o, 0, 100)
	if p[0].Tier != o {
		t.Fatalf("block 0 should have been evicted: %+v", p)
	}
	// Block 3 must still be resident.
	p = c.PlanRead("t", "n", "f", o, 300, 100)
	if p[0].Tier == o {
		t.Fatalf("block 3 evicted unexpectedly: %+v", p)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := testCache(t, 200, 200) // 2 blocks
	o := origin()
	c.PlanRead("t", "n", "f", o, 0, 100)   // block 0
	c.PlanRead("t", "n", "f", o, 100, 100) // block 1
	c.PlanRead("t", "n", "f", o, 0, 100)   // touch block 0 (now MRU)
	c.PlanRead("t", "n", "f", o, 200, 100) // block 2 evicts block 1
	if p := c.PlanRead("t", "n", "f", o, 0, 100); p[0].Tier == o {
		t.Fatal("block 0 evicted despite recent touch")
	}
	if p := c.PlanRead("t", "n", "f", o, 100, 100); p[0].Tier != o {
		t.Fatal("block 1 should have been evicted")
	}
}

func TestPartCoalescing(t *testing.T) {
	c := testCache(t, 10000, 10000)
	o := origin()
	// 10 cold blocks must coalesce into one origin part.
	p := c.PlanRead("t", "n", "f", o, 0, 1000)
	if len(p) != 1 || p[0].Bytes != 1000 {
		t.Fatalf("cold parts = %+v", p)
	}
	// Warm the middle only; re-read splits into origin/L1/origin? No:
	// everything was promoted, so full hit in one part.
	p = c.PlanRead("t", "n", "f", o, 0, 1000)
	if len(p) != 1 || p[0].Tier == o {
		t.Fatalf("warm parts = %+v", p)
	}
}

func TestPartialWarmSplit(t *testing.T) {
	// L1 holds one block (promotions of blocks 0 and 1 will push block 2
	// out of L1) but L2 holds ten, so block 2 stays warm in L2.
	c := testCache(t, 100, 1000)
	o := origin()
	c.PlanRead("t", "n", "f", o, 200, 100) // cache block 2 only
	p := c.PlanRead("t", "n", "f", o, 0, 300)
	// blocks 0,1 cold; block 2 warm in L2 → origin(200) then L2(100).
	if len(p) != 2 {
		t.Fatalf("parts = %+v", p)
	}
	if p[0].Tier != o || p[0].Bytes != 200 {
		t.Fatalf("first part = %+v", p[0])
	}
	if p[1].Tier.Name != "tazer-L2@n" || p[1].Bytes != 100 {
		t.Fatalf("second part = %+v (%s)", p[1], p[1].Tier.Name)
	}
}

func TestUnalignedRead(t *testing.T) {
	c := testCache(t, 10000, 10000)
	o := origin()
	p := c.PlanRead("t", "n", "f", o, 150, 125)
	if sum(p) != 125 {
		t.Fatalf("bytes = %d, want 125", sum(p))
	}
}

func TestZeroRead(t *testing.T) {
	c := testCache(t, 1000, 1000)
	if p := c.PlanRead("t", "n", "f", origin(), 0, 0); p != nil {
		t.Fatalf("zero read returned parts: %+v", p)
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(t, 1000, 1000)
	o := origin()
	c.PlanRead("t", "n", "f", o, 0, 500)
	c.PlanRead("t", "n", "g", o, 0, 500)
	c.Invalidate("f")
	if p := c.PlanRead("t", "n", "f", o, 0, 100); p[0].Tier != o {
		t.Fatal("invalidated file still cached")
	}
	if p := c.PlanRead("t", "n", "g", o, 0, 100); p[0].Tier == o {
		t.Fatal("unrelated file was invalidated")
	}
}

func TestStatsAndHitRate(t *testing.T) {
	c := testCache(t, 1000, 1000)
	o := origin()
	c.PlanRead("t", "n", "f", o, 0, 500) // 500 origin
	c.PlanRead("t", "n", "f", o, 0, 500) // 500 L1
	sts := c.Stats()
	if len(sts) != 3 { // L1, L2, origin
		t.Fatalf("stats = %+v", sts)
	}
	var l1, orig uint64
	for _, st := range sts {
		switch st.Name {
		case "L1":
			l1 = st.HitBytes
		case "origin":
			orig = st.HitBytes
		}
	}
	if l1 != 500 || orig != 500 {
		t.Fatalf("l1=%d origin=%d", l1, orig)
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v", hr)
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
	empty := testCache(t, 1000, 1000)
	if empty.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
}

func TestTAZeRPreset(t *testing.T) {
	c := NewTAZeR()
	if c.BlockSize() != 1<<20 {
		t.Fatalf("block size = %d", c.BlockSize())
	}
	levels := TAZeRLevels()
	if len(levels) != 4 || levels[0].Name != "L1" || levels[3].Scope != ClusterWide {
		t.Fatalf("levels = %+v", levels)
	}
	if levels[0].Capacity != 64<<20 || levels[1].Capacity != 16<<30 ||
		levels[2].Capacity != 200<<30 || levels[3].Capacity != 512<<30 {
		t.Fatal("Table 4 capacities wrong")
	}
}

func TestCacheWithSimEngine(t *testing.T) {
	// End-to-end: second reader of a remote file must finish much faster
	// thanks to node-wide caching.
	fs := vfs.New()
	wan := origin()
	cl, err := sim.BuildCluster(fs, sim.ClusterSpec{
		Name: "c", Nodes: 1, Cores: 2, DefaultTier: "wan",
		Shared: []*vfs.Tier{wan},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateSized("data.root", "wan", 500<<20); err != nil {
		t.Fatal(err)
	}
	c := NewTAZeR()
	eng := &sim.Engine{FS: fs, Cluster: cl, Planner: c}
	res, err := eng.Run(&sim.Workload{Tasks: []*sim.Task{
		{Name: "first", Script: []sim.Op{sim.Read("data.root", 500<<20, 1<<20)}},
		{Name: "second", Deps: []string{"first"}, Script: []sim.Op{sim.Read("data.root", 500<<20, 1<<20)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d1 := res.Tasks["first"].End - res.Tasks["first"].Start
	d2 := res.Tasks["second"].End - res.Tasks["second"].Start
	if d2 > d1/10 {
		t.Fatalf("cached read %.3fs not ≫ faster than cold %.3fs", d2, d1)
	}
	if c.HitRate() < 0.45 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestScopeString(t *testing.T) {
	if TaskPrivate.String() == "" || NodeWide.String() == "" || ClusterWide.String() == "" {
		t.Fatal("scope strings")
	}
}

func TestReadaheadPrefetchesSequential(t *testing.T) {
	c := testCache(t, 100000, 100000)
	c.SetReadahead(4)
	o := origin()
	// Sequential stream: first read cold; continuation triggers prefetch of
	// the next 4 blocks, so subsequent reads hit L1.
	p1 := c.PlanRead("t", "n", "f", o, 0, 100)
	if sum(p1) != 100 {
		t.Fatalf("first read bytes = %d (no prefetch without history)", sum(p1))
	}
	p2 := c.PlanRead("t", "n", "f", o, 100, 100)
	// Demand (100, cold) + prefetch of blocks 2..5 (400).
	if sum(p2) != 500 {
		t.Fatalf("sequential read fetched %d, want 500 incl. readahead", sum(p2))
	}
	if c.PrefetchedBytes() != 400 {
		t.Fatalf("PrefetchedBytes = %d", c.PrefetchedBytes())
	}
	// Blocks 2..5 are now resident: with further refills disabled, every
	// demand read below hits cache.
	c.SetReadahead(0)
	for off := int64(200); off < 600; off += 100 {
		p := c.PlanRead("t", "n", "f", o, off, 100)
		for _, part := range p {
			if part.Tier == o {
				t.Fatalf("offset %d went to origin despite prefetch", off)
			}
		}
	}
}

func TestReadaheadIgnoresRandomAccess(t *testing.T) {
	c := testCache(t, 100000, 100000)
	c.SetReadahead(4)
	o := origin()
	c.PlanRead("t", "n", "f", o, 0, 100)
	// Non-sequential jump: no prefetch.
	p := c.PlanRead("t", "n", "f", o, 5000, 100)
	if sum(p) != 100 {
		t.Fatalf("random read fetched %d, want 100", sum(p))
	}
	if c.PrefetchedBytes() != 0 {
		t.Fatalf("prefetched on random access: %d", c.PrefetchedBytes())
	}
	c.SetReadahead(-3) // clamps to disabled
	p = c.PlanRead("t", "n", "f", o, 5100, 100)
	if sum(p) != 100 {
		t.Fatalf("disabled readahead still prefetched: %d", sum(p))
	}
}

func TestReadaheadReducesWANStalls(t *testing.T) {
	// End-to-end: a chunked sequential reader over a high-latency WAN
	// finishes faster with prefetching (fewer per-access round trips hit
	// the origin).
	run := func(readahead int) float64 {
		fs := vfs.New()
		wan := origin()
		cl, err := sim.BuildCluster(fs, sim.ClusterSpec{
			Name: "c", Nodes: 1, Cores: 1, DefaultTier: "wan",
			Shared: []*vfs.Tier{wan},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.CreateSized("remote.dat", "wan", 64<<20); err != nil {
			t.Fatal(err)
		}
		c, err := New(TAZeRLevels(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadahead(readahead)
		eng := &sim.Engine{FS: fs, Cluster: cl, Planner: c}
		var script []sim.Op
		for off := int64(0); off < 64<<20; off += 1 << 20 {
			script = append(script, sim.ReadAt("remote.dat", off, 1<<20, 1<<20))
		}
		res, err := eng.Run(&sim.Workload{Tasks: []*sim.Task{{Name: "r", Script: script}}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	without, with := run(0), run(8)
	if with >= without {
		t.Fatalf("readahead did not help: %v vs %v", with, without)
	}
}
