package cache

import (
	"testing"

	"datalife/internal/vfs"
)

// FuzzPlanRead checks the cache's planning invariants on arbitrary access
// streams: delivered bytes always cover the demand, parts are positive, and
// no panic occurs — with and without readahead.
func FuzzPlanRead(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(0))
	f.Add([]byte{9, 9, 9, 0, 255}, uint8(4))
	f.Fuzz(func(t *testing.T, accesses []byte, ra uint8) {
		c, err := New([]LevelSpec{
			{Name: "L1", Scope: TaskPrivate, Capacity: 1000, LatencyS: 1e-7, ReadBW: 1e9, WriteBW: 1e9},
			{Name: "L2", Scope: NodeWide, Capacity: 3000, LatencyS: 1e-6, ReadBW: 1e9, WriteBW: 1e9},
		}, 100)
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadahead(int(ra % 8))
		o := vfs.NewWAN("wan", 1e8)
		for i, a := range accesses {
			off := int64(a) * 50
			n := int64(a%7)*40 + 1
			task := "t" + string(rune('0'+i%3))
			parts := c.PlanRead(task, "n0", "f", o, off, n)
			var sum int64
			for _, p := range parts {
				if p.Bytes <= 0 {
					t.Fatalf("non-positive part: %+v", p)
				}
				if p.Tier == nil {
					t.Fatal("nil tier")
				}
				sum += p.Bytes
			}
			if sum < n {
				t.Fatalf("planned %d bytes for a %d-byte read", sum, n)
			}
		}
	})
}
