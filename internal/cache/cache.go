// Package cache implements a TAZeR-style multi-level distributed read cache
// (Suetterlein et al., reproduced here for the Belle II case study, §6.4 and
// Table 4 of the DataLife paper): task-private DRAM, node-wide DRAM,
// node-wide SSD, and a cluster-wide filesystem level, in front of a remote
// origin (the WAN data server).
//
// The cache implements sim.ReadPlanner: every read is split block-wise across
// the first level holding each block, misses fall through to the origin tier,
// and fetched blocks are promoted into all levels with LRU eviction. Each
// level's service cost is modelled by a vfs.Tier, so cache hits contend for
// realistic device bandwidth in the simulator.
package cache

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"datalife/internal/sim"
	"datalife/internal/vfs"
)

// Scope determines how a level's state is shared.
type Scope uint8

const (
	// TaskPrivate keeps separate contents per task.
	TaskPrivate Scope = iota
	// NodeWide shares contents among tasks on one node.
	NodeWide
	// ClusterWide shares contents across all nodes.
	ClusterWide
)

func (s Scope) String() string {
	switch s {
	case TaskPrivate:
		return "task-private"
	case NodeWide:
		return "node-wide"
	default:
		return "cluster-wide"
	}
}

// LevelSpec describes one cache level.
type LevelSpec struct {
	Name     string
	Scope    Scope
	Capacity int64 // bytes per instance
	// Device performance. For node-scoped levels a tier is cloned per node
	// so bandwidth contention stays node-local.
	LatencyS        float64
	ReadBW, WriteBW float64
}

// TAZeRLevels returns the paper's Table 4 configuration.
func TAZeRLevels() []LevelSpec {
	return []LevelSpec{
		{Name: "L1", Scope: TaskPrivate, Capacity: 64 << 20, LatencyS: 2e-7, ReadBW: 12e9, WriteBW: 12e9},
		{Name: "L2", Scope: NodeWide, Capacity: 16 << 30, LatencyS: 5e-7, ReadBW: 10e9, WriteBW: 10e9},
		{Name: "L3", Scope: NodeWide, Capacity: 200 << 30, LatencyS: 1e-4, ReadBW: 3e9, WriteBW: 2e9},
		{Name: "L4", Scope: ClusterWide, Capacity: 512 << 30, LatencyS: 1e-3, ReadBW: 2e9, WriteBW: 1.5e9},
	}
}

type blockKey struct {
	path  string
	block int64
}

// instance is one level's state for one scope key (task, node, or cluster).
type instance struct {
	cap   int64
	used  int64
	lru   *list.List // front = most recent; values are blockKey
	index map[blockKey]*list.Element
}

func newInstance(capacity int64) *instance {
	return &instance{cap: capacity, lru: list.New(), index: make(map[blockKey]*list.Element)}
}

func (in *instance) has(k blockKey) bool {
	el, ok := in.index[k]
	if ok {
		in.lru.MoveToFront(el)
	}
	return ok
}

func (in *instance) insert(k blockKey, size int64) {
	if el, ok := in.index[k]; ok {
		in.lru.MoveToFront(el)
		return
	}
	if size > in.cap {
		return // block larger than the level; skip
	}
	for in.used+size > in.cap && in.lru.Len() > 0 {
		back := in.lru.Back()
		bk := back.Value.(blockKey)
		in.lru.Remove(back)
		delete(in.index, bk)
		in.used -= size // uniform block size: safe to subtract one block
	}
	in.index[k] = in.lru.PushFront(k)
	in.used += size
}

// level binds a spec to its per-scope instances and per-node tiers.
type level struct {
	spec      LevelSpec
	instances map[string]*instance
	tiers     map[string]*vfs.Tier // key: node (or "" for cluster scope)
}

// LevelStats reports one level's accounting.
type LevelStats struct {
	Name      string
	Hits      uint64
	HitBytes  uint64
	Evictions uint64
}

// Cache is the multi-level read cache.
type Cache struct {
	mu        sync.Mutex
	levels    []*level
	blockSize int64
	hits      map[string]*LevelStats
	origin    LevelStats // fall-through accounting
	// readahead is the number of blocks prefetched past a sequential read
	// (Table 1's "block prefetching" remediation); 0 disables.
	readahead int
	// seqEnd tracks each stream's last read end for sequentiality detection.
	seqEnd map[string]int64
	// pfEnd tracks each stream's prefetch frontier (exclusive block index),
	// so refills batch instead of trickling one block per read.
	pfEnd map[string]int64
	// PrefetchedBytes counts bytes fetched ahead of demand.
	prefetchedBytes uint64
}

// New builds a cache with the given levels and block size.
func New(levels []LevelSpec, blockSize int64) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("cache: block size must be positive, got %d", blockSize)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: need at least one level")
	}
	c := &Cache{blockSize: blockSize, hits: make(map[string]*LevelStats),
		seqEnd: make(map[string]int64), pfEnd: make(map[string]int64)}
	for _, spec := range levels {
		if spec.Capacity < blockSize {
			return nil, fmt.Errorf("cache: level %s capacity %d below block size %d",
				spec.Name, spec.Capacity, blockSize)
		}
		c.levels = append(c.levels, &level{
			spec:      spec,
			instances: make(map[string]*instance),
			tiers:     make(map[string]*vfs.Tier),
		})
		c.hits[spec.Name] = &LevelStats{Name: spec.Name}
	}
	return c, nil
}

// NewTAZeR builds the Table 4 cache with a 1 MiB block size.
func NewTAZeR() *Cache {
	c, err := New(TAZeRLevels(), 1<<20)
	if err != nil {
		panic(err) // static config is valid by construction
	}
	return c
}

// BlockSize returns the cache block size.
func (c *Cache) BlockSize() int64 { return c.blockSize }

// SetReadahead enables block prefetching: when a stream reads sequentially,
// the next `blocks` blocks are fetched ahead of demand. Zero disables.
func (c *Cache) SetReadahead(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if blocks < 0 {
		blocks = 0
	}
	c.readahead = blocks
}

// PrefetchedBytes reports bytes fetched ahead of demand so far.
func (c *Cache) PrefetchedBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.prefetchedBytes
}

// scopeKey returns the instance key for a level given the caller identity.
func (lv *level) scopeKey(task, node string) string {
	switch lv.spec.Scope {
	case TaskPrivate:
		return task
	case NodeWide:
		return node
	default:
		return ""
	}
}

// tierFor returns (creating on demand) the device tier used to charge time
// for hits in this level from the given node. Node-scoped and task-scoped
// levels get one tier per node; cluster scope gets a single shared tier.
func (lv *level) tierFor(node string) *vfs.Tier {
	key := node
	if lv.spec.Scope == ClusterWide {
		key = ""
	}
	t, ok := lv.tiers[key]
	if !ok {
		name := "tazer-" + lv.spec.Name
		if key != "" {
			name += "@" + key
		}
		t = &vfs.Tier{
			Name:     name,
			Kind:     vfs.Ramdisk,
			Node:     key,
			Shared:   lv.spec.Scope == ClusterWide,
			LatencyS: lv.spec.LatencyS,
			ReadBW:   lv.spec.ReadBW,
			WriteBW:  lv.spec.WriteBW,
		}
		lv.tiers[key] = t
	}
	return t
}

// PlanRead implements sim.ReadPlanner: each block of the requested range is
// served by the first level that holds it, otherwise by the origin tier, and
// is then promoted into every level. Adjacent blocks served by the same tier
// coalesce into a single part.
func (c *Cache) PlanRead(task, node, path string, home *vfs.Tier, off, n int64) []sim.ReadPart {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n <= 0 {
		return nil
	}
	var parts []sim.ReadPart
	appendPart := func(tier *vfs.Tier, bytes int64) {
		// Coalesce adjacent demand parts on the same tier; never fold into a
		// batched (prefetch) part, whose request accounting differs.
		if last := len(parts) - 1; last >= 0 && parts[last].Tier == tier && parts[last].Requests == 0 {
			parts[last].Bytes += bytes
			return
		}
		parts = append(parts, sim.ReadPart{Tier: tier, Bytes: bytes})
	}
	first := off / c.blockSize
	last := (off + n - 1) / c.blockSize

	// Block prefetching: on a sequential continuation, keep a readahead
	// window ahead of the stream, refilling in batches once the window is
	// half drained (one round trip per refill, like OS readahead). A stream
	// qualifies only once it has history — a first read never prefetches.
	if c.readahead > 0 {
		key := task + "\x00" + path
		if prev, seen := c.seqEnd[key]; seen && prev == off {
			frontier := c.pfEnd[key]
			if frontier < last+1 {
				frontier = last + 1
			}
			if frontier-(last+1) < int64(c.readahead)/2 {
				target := last + int64(c.readahead)
				pf := int64(0)
				for b := frontier; b <= target; b++ {
					k := blockKey{path, b}
					resident := false
					for _, lv := range c.levels {
						if lv.instance(lv.scopeKey(task, node)).has(k) {
							resident = true
							break
						}
					}
					if !resident {
						pf += c.blockSize
					}
					for _, lv := range c.levels {
						lv.instance(lv.scopeKey(task, node)).insert(k, c.blockSize)
					}
				}
				if pf > 0 {
					// One batched request: the round trip is paid once.
					parts = append(parts, sim.ReadPart{Tier: home, Bytes: pf, Requests: 1})
					c.prefetchedBytes += uint64(pf)
				}
				c.pfEnd[key] = target + 1
			}
		} else {
			delete(c.pfEnd, key) // stream broke; restart the window
		}
		c.seqEnd[key] = off + n
	}
	remaining := n
	for b := first; b <= last; b++ {
		lo := b * c.blockSize
		hi := lo + c.blockSize
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		bytes := hi - lo
		if bytes > remaining {
			bytes = remaining
		}
		remaining -= bytes

		k := blockKey{path, b}
		served := false
		for _, lv := range c.levels {
			in := lv.instance(lv.scopeKey(task, node))
			if in.has(k) {
				st := c.hits[lv.spec.Name]
				st.Hits++
				st.HitBytes += uint64(bytes)
				appendPart(lv.tierFor(node), bytes)
				served = true
				break
			}
		}
		if !served {
			c.origin.Hits++
			c.origin.HitBytes += uint64(bytes)
			appendPart(home, bytes)
		}
		// Promote into all levels.
		for _, lv := range c.levels {
			lv.instance(lv.scopeKey(task, node)).insert(k, c.blockSize)
		}
	}
	return parts
}

func (lv *level) instance(key string) *instance {
	in, ok := lv.instances[key]
	if !ok {
		in = newInstance(lv.spec.Capacity)
		lv.instances[key] = in
	}
	return in
}

// Invalidate drops every cached block of path from all levels (needed when a
// producer overwrites a file).
func (c *Cache) Invalidate(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, lv := range c.levels {
		for _, in := range lv.instances {
			for k, el := range in.index {
				if k.path == path {
					in.lru.Remove(el)
					delete(in.index, k)
					in.used -= c.blockSize
				}
			}
		}
	}
}

// Stats returns per-level hit accounting plus an "origin" pseudo-level for
// fall-through reads, in level order.
func (c *Cache) Stats() []LevelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LevelStats, 0, len(c.levels)+1)
	for _, lv := range c.levels {
		out = append(out, *c.hits[lv.spec.Name])
	}
	o := c.origin
	o.Name = "origin"
	out = append(out, o)
	return out
}

// HitRate returns the byte hit rate across all cache levels.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hit, total uint64
	for _, st := range c.hits {
		hit += st.HitBytes
		total += st.HitBytes
	}
	total += c.origin.HitBytes
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// String summarizes the cache state.
func (c *Cache) String() string {
	sts := c.Stats()
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
	s := "cache{"
	for i, st := range sts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%dB", st.Name, st.HitBytes)
	}
	return s + "}"
}
