package dfl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Severity classifies a Violation: errors make a graph unusable for
// coordination decisions, warnings flag suspicious but possibly intentional
// structure (e.g. final outputs are legitimately unconsumed).
type Severity uint8

const (
	// Warning marks advisory findings.
	Warning Severity = iota
	// Error marks invariant breaches.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Violation is one breach of the §4.1 DFL graph invariants found by
// Validate.
type Violation struct {
	// Rule names the invariant: bipartite, cycle, ordering, conservation,
	// orphan, unconsumed, or props.
	Rule string
	// Subject names the vertex or edge the violation anchors to.
	Subject string
	// Message explains the breach.
	Message string
	// Severity is Error for invariant breaches, Warning for advisories.
	Severity Severity
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", v.Severity, v.Rule, v.Subject, v.Message)
}

// Errors filters a violation list down to Severity == Error entries.
func Errors(vs []Violation) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Severity == Error {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks the graph against the structural invariants of a DFL-DAG
// (§4.1): bipartite edge discipline (producer edges task→data, consumer
// edges data→task), acyclicity, producer-precedes-consumer ordering (data
// with consumers must be produced or be an initial input), flow conservation
// (unique bytes consumed cannot exceed bytes produced plus the initial
// size), orphan and unconsumed data vertices, and property sanity. Edges
// added through AddEdge already satisfy the bipartite rule; Validate
// re-checks it so deserialized or hand-built graphs (AddUncheckedEdge) get
// the same guarantee.
//
// Templates (DFL-T) may legitimately contain cycles from merged loop
// instances; use Errors plus a rule filter, or validate the instance DAG
// before aggregation.
func (g *Graph) Validate() []Violation {
	var vs []Violation

	// Bipartite edge discipline.
	for _, e := range g.Edges() {
		switch e.Kind {
		case Consumer:
			if e.Src.Kind != DataVertex || e.Dst.Kind != TaskVertex {
				vs = append(vs, Violation{
					Rule: "bipartite", Subject: edgeName(e), Severity: Error,
					Message: fmt.Sprintf("consumer edge must be data→task, got %s→%s", e.Src.Kind, e.Dst.Kind),
				})
			}
		case Producer:
			if e.Src.Kind != TaskVertex || e.Dst.Kind != DataVertex {
				vs = append(vs, Violation{
					Rule: "bipartite", Subject: edgeName(e), Severity: Error,
					Message: fmt.Sprintf("producer edge must be task→data, got %s→%s", e.Src.Kind, e.Dst.Kind),
				})
			}
		default:
			vs = append(vs, Violation{
				Rule: "bipartite", Subject: edgeName(e), Severity: Error,
				Message: fmt.Sprintf("unknown edge kind %d", e.Kind),
			})
		}
	}

	// Acyclicity: name the vertices stuck on a cycle for the message.
	if _, err := g.TopoSort(); err != nil {
		vs = append(vs, Violation{
			Rule: "cycle", Subject: g.cycleSubject(), Severity: Error,
			Message: "graph has a cycle; a DFL-DAG must be acyclic",
		})
	}

	// Per-data-vertex flow checks.
	for _, d := range g.DataFiles() {
		var produced uint64
		for _, e := range g.in[d.ID] {
			if e.Kind == Producer {
				produced += e.Props.Volume
			}
		}
		nIn, nOut := len(g.in[d.ID]), len(g.out[d.ID])
		initial := d.Data.Size // unproduced data is an initial input of this size
		switch {
		case nIn == 0 && nOut == 0:
			vs = append(vs, Violation{
				Rule: "orphan", Subject: d.ID.String(), Severity: Warning,
				Message: "data vertex has no producers and no consumers",
			})
		case nIn == 0 && nOut > 0 && initial <= 0:
			vs = append(vs, Violation{
				Rule: "ordering", Subject: d.ID.String(), Severity: Error,
				Message: "data is consumed but never produced and has no initial size",
			})
		case nIn > 0 && nOut == 0:
			vs = append(vs, Violation{
				Rule: "unconsumed", Subject: d.ID.String(), Severity: Warning,
				Message: "data is produced but never consumed (dead output unless it is a final result)",
			})
		}
		// Conservation: unique bytes any consumer touches are bounded by
		// what exists — the final size when known, else the produced bytes.
		capacity := uint64(0)
		if initial > 0 {
			capacity = uint64(initial)
		}
		if capacity == 0 {
			capacity = produced
		}
		for _, e := range g.out[d.ID] {
			if e.Kind != Consumer {
				continue
			}
			if e.Props.Footprint > e.Props.Volume {
				vs = append(vs, Violation{
					Rule: "conservation", Subject: edgeName(e), Severity: Error,
					Message: fmt.Sprintf("footprint %d exceeds volume %d (unique bytes cannot exceed total bytes)",
						e.Props.Footprint, e.Props.Volume),
				})
			}
			// Templates sum footprints over merged instances (Samples
			// counts them), so the invariant holds per sample.
			samples := e.Props.Samples
			if samples < 1 {
				samples = 1
			}
			if mean := float64(e.Props.Footprint) / float64(samples); capacity > 0 && mean > float64(capacity) {
				vs = append(vs, Violation{
					Rule: "conservation", Subject: edgeName(e), Severity: Error,
					Message: fmt.Sprintf("consumed footprint %d over %d flow(s) exceeds produced+initial bytes %d",
						e.Props.Footprint, samples, capacity),
				})
			}
		}
	}

	// Property sanity.
	for _, v := range g.Vertices() {
		switch v.ID.Kind {
		case TaskVertex:
			if v.Task.Instances < 1 {
				vs = append(vs, Violation{Rule: "props", Subject: v.ID.String(), Severity: Error,
					Message: fmt.Sprintf("task Instances must be >= 1, got %d", v.Task.Instances)})
			}
			if bad(v.Task.Lifetime) || v.Task.Lifetime < 0 {
				vs = append(vs, Violation{Rule: "props", Subject: v.ID.String(), Severity: Error,
					Message: fmt.Sprintf("task lifetime %v is negative or not finite", v.Task.Lifetime)})
			}
		case DataVertex:
			if v.Data.Instances < 1 {
				vs = append(vs, Violation{Rule: "props", Subject: v.ID.String(), Severity: Error,
					Message: fmt.Sprintf("data Instances must be >= 1, got %d", v.Data.Instances)})
			}
			if v.Data.Size < 0 {
				vs = append(vs, Violation{Rule: "props", Subject: v.ID.String(), Severity: Error,
					Message: fmt.Sprintf("data size %d is negative", v.Data.Size)})
			}
		}
	}
	for _, e := range g.Edges() {
		if e.Props.Samples < 1 {
			vs = append(vs, Violation{Rule: "props", Subject: edgeName(e), Severity: Error,
				Message: fmt.Sprintf("edge Samples must be >= 1, got %d", e.Props.Samples)})
		}
		if bad(e.Props.Latency) || e.Props.Latency < 0 {
			vs = append(vs, Violation{Rule: "props", Subject: edgeName(e), Severity: Error,
				Message: fmt.Sprintf("edge latency %v is negative or not finite", e.Props.Latency)})
		}
	}

	sort.SliceStable(vs, func(i, j int) bool {
		if vs[i].Severity != vs[j].Severity {
			return vs[i].Severity > vs[j].Severity
		}
		if vs[i].Rule != vs[j].Rule {
			return vs[i].Rule < vs[j].Rule
		}
		return vs[i].Subject < vs[j].Subject
	})
	return vs
}

// cycleSubject names the vertices left unordered by Kahn's algorithm — a
// superset of the cycle members, small enough to point at the problem.
func (g *Graph) cycleSubject() string {
	indeg := make(map[ID]int, len(g.vertices))
	for id := range g.vertices {
		indeg[id] = len(g.in[id])
	}
	var queue []ID
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, e := range g.out[id] {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				queue = append(queue, e.Dst)
			}
		}
	}
	var stuck []string
	for id, d := range indeg {
		if d > 0 {
			stuck = append(stuck, id.String())
		}
	}
	sort.Strings(stuck)
	if len(stuck) > 6 {
		stuck = append(stuck[:6], fmt.Sprintf("… %d more", len(stuck)-6))
	}
	return strings.Join(stuck, ", ")
}

// AddUncheckedEdge inserts an edge without the AddEdge direction checks. It
// exists for deserializers and for testing Validate against malformed
// graphs; regular construction must use AddEdge.
func (g *Graph) AddUncheckedEdge(src, dst ID, kind EdgeKind, props FlowProps) *Edge {
	g.ensure(src)
	g.ensure(dst)
	e := &Edge{Src: src, Dst: dst, Kind: kind, Props: props}
	if e.Props.Samples == 0 {
		e.Props.Samples = 1
	}
	g.appendEdge(e)
	return e
}

func edgeName(e *Edge) string { return e.Src.String() + "→" + e.Dst.String() }

func bad(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
