package dfl_test

import (
	"fmt"

	"datalife/internal/dfl"
)

// ExampleBuild-style walkthrough of the core graph API: construct a small
// producer→data→consumer lifecycle and read its properties.
func Example() {
	g := dfl.New()
	sim := g.AddTask("sim")
	sim.Task.Lifetime = 30

	g.AddEdge(dfl.TaskID("sim"), dfl.DataID("out.h5"), dfl.Producer,
		dfl.FlowProps{Volume: 1 << 30, Footprint: 1 << 30, Latency: 4})
	g.AddEdge(dfl.DataID("out.h5"), dfl.TaskID("train"), dfl.Consumer,
		dfl.FlowProps{Volume: 3 << 30, Footprint: 1 << 30, Latency: 12})

	e := g.FindEdge(dfl.DataID("out.h5"), dfl.TaskID("train"))
	fmt.Printf("vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("train reuse factor: %.1f\n", e.Props.ReuseFactor())
	fmt.Printf("consumers of out.h5: %d\n", g.UseConcurrency(dfl.DataID("out.h5")))
	// Output:
	// vertices=3 edges=2
	// train reuse factor: 3.0
	// consumers of out.h5: 1
}

// ExampleTemplate shows instance aggregation into a lifecycle template.
func ExampleTemplate() {
	g := dfl.New()
	for i := 0; i < 3; i++ {
		task := dfl.TaskID(fmt.Sprintf("worker#%d", i))
		g.AddEdge(task, dfl.DataID("results"), dfl.Producer, dfl.FlowProps{Volume: 100})
	}
	tpl := dfl.Template(g, nil)
	v := tpl.Vertex(dfl.TaskID("worker"))
	fmt.Printf("template instances: %d\n", v.Task.Instances)
	fmt.Printf("merged edge volume: %d\n",
		tpl.FindEdge(dfl.TaskID("worker"), dfl.DataID("results")).Props.Volume)
	// Output:
	// template instances: 3
	// merged edge volume: 300
}
