package dfl

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// assertSnapshotEquivalent deep-compares the graph's (possibly incremental)
// snapshot against a naive from-scratch buildIndex reference on every public
// accessor. Slot numbering may differ between the two (overlay snapshots keep
// delta vertices after the base), so adjacency and neighbor sets are compared
// at the ID level and canonical views element-wise.
func assertSnapshotEquivalent(t *testing.T, g *Graph) {
	t.Helper()
	ix := g.Index()
	ref := buildIndex(g)

	if ix.Len() != ref.Len() {
		t.Fatalf("Len: incremental %d, rebuild %d", ix.Len(), ref.Len())
	}
	if ix.mEdges != ref.mEdges {
		t.Fatalf("edge count: incremental %d, rebuild %d", ix.mEdges, ref.mEdges)
	}

	// Pos/IDAt/VertexAt bijection over exactly the live IDs.
	for r := int32(0); r < int32(ref.Len()); r++ {
		id := ref.IDAt(r)
		p := ix.Pos(id)
		if p < 0 || int(p) >= ix.Len() {
			t.Fatalf("Pos(%v) = %d out of range", id, p)
		}
		if ix.IDAt(p) != id {
			t.Fatalf("IDAt(Pos(%v)) = %v", id, ix.IDAt(p))
		}
		if ix.VertexAt(p) != ref.VertexAt(r) {
			t.Fatalf("VertexAt disagrees for %v", id)
		}
	}
	if ix.Pos(TaskID("__absent__")) != -1 {
		t.Fatal("Pos of absent ID must be -1")
	}

	// Topological order: identical ID sequence and identical error text.
	refTopo, refErr := ref.Topo()
	_, ixErr := ix.Topo()
	gotIDs, gErr := g.TopoSort()
	if (refErr == nil) != (ixErr == nil) || (refErr == nil) != (gErr == nil) {
		t.Fatalf("Topo error mismatch: rebuild %v, incremental %v / %v", refErr, ixErr, gErr)
	}
	if refErr != nil {
		if refErr.Error() != ixErr.Error() {
			t.Fatalf("cycle error text differs:\n incremental %q\n rebuild     %q", ixErr, refErr)
		}
	} else {
		if len(gotIDs) != len(refTopo) {
			t.Fatalf("topo length: incremental %d, rebuild %d", len(gotIDs), len(refTopo))
		}
		ixTopo, _ := ix.Topo()
		for k, slot := range refTopo {
			if want := ref.IDAt(slot); gotIDs[k] != want || ix.IDAt(ixTopo[k]) != want {
				t.Fatalf("topo position %d: incremental %v/%v, rebuild %v",
					k, gotIDs[k], ix.IDAt(ixTopo[k]), want)
			}
		}
	}

	// Adjacency: same edge multiset per vertex, with slot companions that
	// round-trip to the edge endpoints on both sides.
	edgeCounts := func(es []*Edge) map[*Edge]int {
		m := make(map[*Edge]int, len(es))
		for _, e := range es {
			m[e]++
		}
		return m
	}
	for r := int32(0); r < int32(ref.Len()); r++ {
		id := ref.IDAt(r)
		p := ix.Pos(id)
		gotE, gotP := ix.Out(p)
		wantE, _ := ref.Out(r)
		if len(gotE) != len(gotP) || ix.OutDegree(p) != ref.OutDegree(r) {
			t.Fatalf("OutDegree(%v): incremental %d, rebuild %d", id, ix.OutDegree(p), ref.OutDegree(r))
		}
		got, want := edgeCounts(gotE), edgeCounts(wantE)
		for e, c := range want {
			if got[e] != c {
				t.Fatalf("Out(%v) edge multiset differs at %v→%v", id, e.Src, e.Dst)
			}
		}
		for k := range gotE {
			if ix.IDAt(gotP[k]) != gotE[k].Dst {
				t.Fatalf("Out(%v) slot %d does not match edge dst", id, k)
			}
		}
		gotE, gotP = ix.In(p)
		wantE, _ = ref.In(r)
		if ix.InDegree(p) != ref.InDegree(r) {
			t.Fatalf("InDegree(%v): incremental %d, rebuild %d", id, ix.InDegree(p), ref.InDegree(r))
		}
		got, want = edgeCounts(gotE), edgeCounts(wantE)
		for e, c := range want {
			if got[e] != c {
				t.Fatalf("In(%v) edge multiset differs at %v→%v", id, e.Src, e.Dst)
			}
		}
		for k := range gotE {
			if ix.IDAt(gotP[k]) != gotE[k].Src {
				t.Fatalf("In(%v) slot %d does not match edge src", id, k)
			}
		}
	}

	// Canonical views must agree element-wise (same pointers, same order).
	ixVs, ixNT := ix.canonVerts()
	refVs, refNT := ref.canonVerts()
	if len(ixVs) != len(refVs) || ixNT != refNT {
		t.Fatalf("canonical vertices: incremental %d/%d tasks, rebuild %d/%d",
			len(ixVs), ixNT, len(refVs), refNT)
	}
	for k := range refVs {
		if ixVs[k] != refVs[k] {
			t.Fatalf("canonical vertex %d differs: %v vs %v", k, ixVs[k].ID, refVs[k].ID)
		}
	}
	ixEs, refEs := ix.canonEdges(), ref.canonEdges()
	if len(ixEs) != len(refEs) {
		t.Fatalf("canonical edges: incremental %d, rebuild %d", len(ixEs), len(refEs))
	}
	for k := range refEs {
		if ixEs[k] != refEs[k] {
			t.Fatalf("canonical edge %d differs: %v→%v vs %v→%v",
				k, ixEs[k].Src, ixEs[k].Dst, refEs[k].Src, refEs[k].Dst)
		}
	}

	// Producer/consumer sets for every data vertex.
	for r := int32(0); r < int32(ref.Len()); r++ {
		id := ref.IDAt(r)
		if id.Kind != DataVertex {
			continue
		}
		if got, want := g.Producers(id), ref.producersFor(r); !idsEqual(got, want) {
			t.Fatalf("Producers(%v): incremental %v, rebuild %v", id, got, want)
		}
		if got, want := g.Consumers(id), ref.consumersFor(r); !idsEqual(got, want) {
			t.Fatalf("Consumers(%v): incremental %v, rebuild %v", id, got, want)
		}
	}

	// Aggregates and the content fingerprint.
	if ix.totalVolume != ref.totalVolume {
		t.Fatalf("TotalVolume: incremental %d, rebuild %d", ix.totalVolume, ref.totalVolume)
	}
	if ix.bestRate != ref.bestRate {
		t.Fatalf("BestRate: incremental %g, rebuild %g", ix.bestRate, ref.bestRate)
	}
	if ix.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("Fingerprint: incremental %#x, rebuild %#x", ix.Fingerprint(), ref.Fingerprint())
	}
}

// traceStep applies one random mutation to g. Ops are drawn so that a
// realistic mix of fast derivations and compactions occurs: frontier growth
// (anchored, stays incremental), random cross edges (forces compaction), and
// property edits (edit-only fast path).
func traceStep(rng *rand.Rand, g *Graph, step int) {
	switch op := rng.Intn(12); {
	case op < 4:
		// Frontier growth: hang a new producer/consumer pair off the current
		// topological tail — the anchored shape the fast path serves.
		tail, err := g.TopoSort()
		if err != nil || len(tail) == 0 {
			g.AddTask(fmt.Sprintf("seed%d", step))
			return
		}
		a := tail[len(tail)-1]
		if a.Kind == TaskVertex {
			d := g.AddData(fmt.Sprintf("d%d", step))
			_, _ = g.AddEdge(a, d.ID, Producer, FlowProps{Volume: uint64(1 + rng.Intn(100)), Latency: 1})
		} else {
			tk := g.AddTask(fmt.Sprintf("t%d", step))
			_, _ = g.AddEdge(a, tk.ID, Consumer, FlowProps{Volume: uint64(1 + rng.Intn(100)), Latency: 1})
		}
	case op < 6:
		// Random cross edge between existing vertices (may be rejected by the
		// bipartite check; may create an edge into an old vertex → compaction).
		vs := g.Vertices()
		if len(vs) < 2 {
			return
		}
		a, b := vs[rng.Intn(len(vs))], vs[rng.Intn(len(vs))]
		if a.ID.Kind == b.ID.Kind || g.FindEdge(a.ID, b.ID) != nil {
			return
		}
		kind := Producer
		if a.ID.Kind == DataVertex {
			kind = Consumer
		}
		_, _ = g.AddEdge(a.ID, b.ID, kind, FlowProps{Volume: uint64(1 + rng.Intn(50)), Latency: 2})
	case op < 8:
		// Edit a random edge's properties through the tracked delta path.
		es := g.Edges()
		if len(es) == 0 {
			return
		}
		e := es[rng.Intn(len(es))]
		p := e.Props
		p.Volume = uint64(1 + rng.Intn(1000))
		p.Latency = float64(1+rng.Intn(9)) / 2
		g.SetEdgeProps(e.Src, e.Dst, p)
	case op < 9:
		// Fresh disconnected vertex (compacts: unanchored).
		g.AddData(fmt.Sprintf("iso%d", step))
	case op < 11:
		// Edit a random vertex's properties through the tracked delta path
		// (copy-on-write, edit-only fast path).
		vs := g.Vertices()
		if len(vs) == 0 {
			return
		}
		v := vs[rng.Intn(len(vs))]
		if v.ID.Kind == TaskVertex {
			p := v.Task
			p.Lifetime = float64(1+rng.Intn(20)) / 4
			p.ReadOps += uint64(rng.Intn(5))
			p.InVolume += uint64(rng.Intn(512))
			g.SetTaskProps(v.ID.Name, p)
		} else {
			p := v.Data
			p.Size = int64(rng.Intn(4096))
			p.Lifetime += 0.5
			g.SetDataProps(v.ID.Name, p)
		}
	default:
		// Escape hatch: untracked in-place mutation plus Invalidate.
		es := g.Edges()
		if len(es) == 0 {
			return
		}
		e := g.FindEdge(es[rng.Intn(len(es))].Src, es[rng.Intn(len(es))].Dst)
		if e != nil {
			e.Props.Ops += 3
			g.Invalidate()
		}
	}
}

// TestIncrementalMatchesRebuildOnTraces drives randomized mutation traces and
// checks, after every step, that the incrementally derived snapshot is
// indistinguishable from a naive full rebuild on every public accessor.
func TestIncrementalMatchesRebuildOnTraces(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := New()
			g.AddTask("root")
			for step := 0; step < 120; step++ {
				traceStep(rng, g, step)
				assertSnapshotEquivalent(t, g)
			}
			st := g.IndexStats()
			if st.Fast == 0 {
				t.Fatalf("trace never exercised the fast path: %+v", st)
			}
			if st.Compactions == 0 {
				t.Fatalf("trace never exercised compaction: %+v", st)
			}
		})
	}
}

// TestStreamingChainStaysFast grows a producer chain one edge at a time with
// a query after every append and asserts the derivations are overwhelmingly
// O(delta): compactions are bounded by the geometric extras threshold, so
// their count grows logarithmically, not linearly.
func TestStreamingChainStaysFast(t *testing.T) {
	g := New()
	prev := g.AddTask("t0").ID
	g.Index()
	for i := 0; i < 600; i++ {
		var next ID
		if prev.Kind == TaskVertex {
			next = DataID(fmt.Sprintf("d%d", i))
			g.AddData(next.Name)
			if _, err := g.AddEdge(prev, next, Producer, FlowProps{Volume: 8, Latency: 1}); err != nil {
				t.Fatal(err)
			}
		} else {
			next = TaskID(fmt.Sprintf("t%d", i))
			g.AddTask(next.Name)
			if _, err := g.AddEdge(prev, next, Consumer, FlowProps{Volume: 8, Latency: 1}); err != nil {
				t.Fatal(err)
			}
		}
		prev = next
		if _, err := g.TopoSort(); err != nil {
			t.Fatal(err)
		}
		g.Fingerprint()
		if i%97 == 0 {
			assertSnapshotEquivalent(t, g)
		}
	}
	assertSnapshotEquivalent(t, g)
	st := g.IndexStats()
	if st.Fast < st.Derivations*9/10 {
		t.Fatalf("streaming build fell off the fast path: %+v", st)
	}
	if st.Compactions > 16 {
		t.Fatalf("too many compactions for a geometric threshold: %+v", st)
	}
}

// TestEditOnlyDeltasStayFast asserts that pure property-edit deltas never
// compact until the cumulative edited set crosses its threshold.
func TestEditOnlyDeltasStayFast(t *testing.T) {
	g := New()
	g.AddTask("t")
	for i := 0; i < 8; i++ {
		g.AddData(fmt.Sprintf("d%d", i))
		if _, err := g.AddEdge(TaskID("t"), DataID(fmt.Sprintf("d%d", i)), Producer,
			FlowProps{Volume: 10, Latency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	g.Index()
	base := g.IndexStats().Compactions
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			id := DataID(fmt.Sprintf("d%d", i))
			e := g.FindEdge(TaskID("t"), id)
			p := e.Props
			p.Volume += uint64(round + 1) // raises the best rate: stays fast
			g.SetEdgeProps(TaskID("t"), id, p)
		}
		assertSnapshotEquivalent(t, g)
	}
	st := g.IndexStats()
	if st.Compactions != base {
		t.Fatalf("edit-only rounds compacted: %+v", st)
	}
	if st.Fast == 0 {
		t.Fatal("edit-only rounds never took the fast path")
	}

	// Lowering the best-rate edge must fall back to compaction and still agree.
	e := g.FindEdge(TaskID("t"), DataID("d0"))
	p := e.Props
	p.Volume = 1
	g.SetEdgeProps(TaskID("t"), DataID("d0"), p)
	assertSnapshotEquivalent(t, g)
	if g.IndexStats().Compactions == base {
		t.Fatal("lowering the best-rate edge should have compacted")
	}
}

// TestVertexEditOnlyDeltasStayFast asserts that SetTaskProps/SetDataProps
// deltas are non-structural: they never compact (until the cumulative edited
// set crosses its threshold), previously obtained snapshots keep reading the
// old vertex values, and the content fingerprint tracks the edits exactly.
func TestVertexEditOnlyDeltasStayFast(t *testing.T) {
	g := New()
	g.AddTask("t")
	for i := 0; i < 6; i++ {
		d := fmt.Sprintf("d%d", i)
		g.AddData(d)
		if _, err := g.AddEdge(TaskID("t"), DataID(d), Producer,
			FlowProps{Volume: 10, Latency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	pinned := g.Index()
	pinnedFP := pinned.Fingerprint()
	pinnedLifetime := pinned.VertexAt(pinned.Pos(TaskID("t"))).Task.Lifetime
	base := g.IndexStats().Compactions

	for round := 1; round <= 20; round++ {
		g.SetTaskProps("t", TaskProps{Lifetime: float64(round), ReadOps: uint64(round)})
		g.SetDataProps(fmt.Sprintf("d%d", round%6), DataProps{Size: int64(round * 100), Lifetime: 1})
		assertSnapshotEquivalent(t, g)
	}
	st := g.IndexStats()
	if st.Compactions != base {
		t.Fatalf("vertex-edit-only rounds compacted: %+v", st)
	}
	if st.Fast == 0 {
		t.Fatal("vertex-edit-only rounds never took the fast path")
	}

	// The pinned snapshot must still read the pre-edit values.
	if got := pinned.VertexAt(pinned.Pos(TaskID("t"))).Task.Lifetime; got != pinnedLifetime {
		t.Fatalf("pinned snapshot drifted: lifetime %g, want %g", got, pinnedLifetime)
	}
	if pinned.Fingerprint() != pinnedFP {
		t.Fatal("pinned snapshot fingerprint drifted")
	}
	if g.Fingerprint() == pinnedFP {
		t.Fatal("fingerprint did not track vertex edits")
	}

	// Editing a vertex added in the same delta must surface its final value
	// without an edit record.
	g.AddTask("late")
	g.SetTaskProps("late", TaskProps{Lifetime: 9})
	assertSnapshotEquivalent(t, g)
	if got := g.Vertex(TaskID("late")).Task.Lifetime; got != 9 {
		t.Fatalf("same-delta edit lost: lifetime %g", got)
	}
	if !g.SetTaskProps("late", TaskProps{Lifetime: 10}) {
		t.Fatal("SetTaskProps returned false for existing task")
	}
	if g.SetTaskProps("absent", TaskProps{}) || g.SetDataProps("absent", DataProps{}) {
		t.Fatal("SetTaskProps/SetDataProps must return false for missing vertices")
	}
	assertSnapshotEquivalent(t, g)
}

// TestCycleIntroducedMidStream introduces a cycle among vertices added in a
// single delta and checks the incremental path reports the exact same error
// text a full rebuild does, both at the failing snapshot and afterwards.
func TestCycleIntroducedMidStream(t *testing.T) {
	g := New()
	g.AddTask("t0")
	g.AddData("d0")
	if _, err := g.AddEdge(TaskID("t0"), DataID("d0"), Producer, FlowProps{Volume: 4, Latency: 1}); err != nil {
		t.Fatal(err)
	}
	g.Index() // establish a snapshot; topo tail is d0

	// One delta: d0→t1 (anchor edge), then a 2-cycle t1→d1→t1 among the new
	// vertices — anchored, structurally incremental, but unorderable.
	g.AddTask("t1")
	g.AddData("d1")
	mustEdge := func(src, dst ID, k EdgeKind) {
		t.Helper()
		if _, err := g.AddEdge(src, dst, k, FlowProps{Volume: 1, Latency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(DataID("d0"), TaskID("t1"), Consumer)
	mustEdge(TaskID("t1"), DataID("d1"), Producer)
	mustEdge(DataID("d1"), TaskID("t1"), Consumer)

	_, err := g.TopoSort()
	if err == nil {
		t.Fatal("expected a cycle error")
	}
	assertSnapshotEquivalent(t, g)

	// Later structural growth on a poisoned order must compact and agree.
	g.AddData("d2")
	mustEdge(TaskID("t1"), DataID("d2"), Producer)
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle cannot disappear")
	}
	assertSnapshotEquivalent(t, g)
}

// TestStaleSnapshotsUnderConcurrentMutation pins reader goroutines to old
// snapshots while the writer keeps mutating and deriving new ones. Every
// answer a pinned snapshot gives must stay bit-identical no matter how far
// the writer has advanced; run with -race this doubles as the memory-model
// check for the shared epoch arrays and seq-marked adjacency halves.
func TestStaleSnapshotsUnderConcurrentMutation(t *testing.T) {
	g := New()
	prev := g.AddTask("t0").ID
	var published atomic.Pointer[Index]
	published.Store(g.Index())

	const (
		readers = 4
		steps   = 400
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := published.Load()
				n := ix.Len()
				topo, err := ix.Topo()
				if err != nil {
					errs <- fmt.Errorf("stale snapshot reports cycle: %v", err)
					return
				}
				if len(topo) != n {
					errs <- fmt.Errorf("stale snapshot topo length %d != %d", len(topo), n)
					return
				}
				fp := ix.Fingerprint()
				var edges int
				for i := int32(0); i < int32(n); i++ {
					es, ps := ix.Out(i)
					if len(es) != len(ps) {
						errs <- fmt.Errorf("ragged adjacency at slot %d", i)
						return
					}
					for k := range es {
						if ix.IDAt(ps[k]) != es[k].Dst {
							errs <- fmt.Errorf("slot %d edge %d dst mismatch", i, k)
							return
						}
					}
					edges += len(es)
				}
				// Re-reads from the same snapshot must not drift.
				if n2, fp2 := ix.Len(), ix.Fingerprint(); n2 != n || fp2 != fp {
					errs <- fmt.Errorf("snapshot drifted: n %d→%d fp %#x→%#x", n, n2, fp, fp2)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < steps; i++ {
		var next ID
		if prev.Kind == TaskVertex {
			next = DataID(fmt.Sprintf("d%d", i))
			g.AddData(next.Name)
			if _, err := g.AddEdge(prev, next, Producer, FlowProps{Volume: 8, Latency: 1}); err != nil {
				t.Fatal(err)
			}
		} else {
			next = TaskID(fmt.Sprintf("t%d", i))
			g.AddTask(next.Name)
			if _, err := g.AddEdge(prev, next, Consumer, FlowProps{Volume: 8, Latency: 1}); err != nil {
				t.Fatal(err)
			}
		}
		prev = next
		if rng.Intn(3) == 0 {
			es := g.Edges()
			e := es[rng.Intn(len(es))]
			p := e.Props
			p.Volume += 5
			g.SetEdgeProps(e.Src, e.Dst, p)
		}
		if rng.Intn(4) == 0 {
			vs := g.Vertices()
			v := vs[rng.Intn(len(vs))]
			if v.ID.Kind == TaskVertex {
				p := v.Task
				p.ReadOps += 7
				g.SetTaskProps(v.ID.Name, p)
			} else {
				p := v.Data
				p.Size += 64
				g.SetDataProps(v.ID.Name, p)
			}
		}
		published.Store(g.Index())
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	assertSnapshotEquivalent(t, g)
	if st := g.IndexStats(); st.Fast == 0 {
		t.Fatalf("concurrent trace never exercised the fast path: %+v", st)
	}
}
