package dfl

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"datalife/internal/blockstats"
	"datalife/internal/iotrace"
	"datalife/internal/vfs"
)

// chain builds t0 -> d0 -> t1 -> d1 ... with volume v on every edge.
func chain(t *testing.T, n int, v uint64) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		task := TaskID(name("t", i))
		data := DataID(name("d", i))
		if _, err := g.AddEdge(task, data, Producer, FlowProps{Volume: v}); err != nil {
			t.Fatal(err)
		}
		if i+1 < n {
			next := TaskID(name("t", i+1))
			if _, err := g.AddEdge(data, next, Consumer, FlowProps{Volume: v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func name(p string, i int) string { return p + string(rune('0'+i)) }

func TestEdgeDirectionValidation(t *testing.T) {
	g := New()
	cases := []struct {
		src, dst ID
		kind     EdgeKind
		ok       bool
	}{
		{DataID("d"), TaskID("t"), Consumer, true},
		{TaskID("t"), DataID("d"), Producer, true},
		{TaskID("t"), DataID("d"), Consumer, false},
		{DataID("d"), TaskID("t"), Producer, false},
		{TaskID("a"), TaskID("b"), Producer, false},
		{DataID("a"), DataID("b"), Consumer, false},
	}
	for i, c := range cases {
		_, err := g.AddEdge(c.src, c.dst, c.kind, FlowProps{})
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v ok=%v", i, err, c.ok)
		}
	}
	if _, err := g.AddEdge(DataID("d"), TaskID("t"), EdgeKind(9), FlowProps{}); err == nil {
		t.Error("unknown edge kind accepted")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := chain(t, 3, 100)
	if g.NumVertices() != 6 || g.NumEdges() != 5 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if len(g.Tasks()) != 3 || len(g.DataFiles()) != 3 {
		t.Fatalf("tasks=%d data=%d", len(g.Tasks()), len(g.DataFiles()))
	}
	if g.OutDegree(TaskID("t0")) != 1 || g.InDegree(TaskID("t0")) != 0 {
		t.Fatal("degree wrong")
	}
	if e := g.FindEdge(TaskID("t0"), DataID("d0")); e == nil || e.Kind != Producer {
		t.Fatal("FindEdge failed")
	}
	if e := g.FindEdge(TaskID("t0"), DataID("d9")); e != nil {
		t.Fatal("phantom edge")
	}
	if g.TotalVolume() != 500 {
		t.Fatalf("TotalVolume = %d", g.TotalVolume())
	}
	e := g.FindEdge(DataID("d0"), TaskID("t1"))
	if e.Other(DataID("d0")) != TaskID("t1") || e.Other(TaskID("t1")) != DataID("d0") {
		t.Fatal("Other wrong")
	}
}

func TestTopoSortChain(t *testing.T) {
	g := chain(t, 4, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[ID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.Src] >= pos[e.Dst] {
			t.Fatalf("edge %v→%v violates topo order", e.Src, e.Dst)
		}
	}
	if !g.IsDAG() {
		t.Fatal("chain should be a DAG")
	}
}

func TestTopoSortCycleDetected(t *testing.T) {
	g := New()
	// t -> d -> t forms a cycle (possible after template merging).
	g.AddEdge(TaskID("t"), DataID("d"), Producer, FlowProps{})
	g.AddEdge(DataID("d"), TaskID("t"), Consumer, FlowProps{})
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if g.IsDAG() {
		t.Fatal("IsDAG on cycle")
	}
}

func TestUseConcurrencyAndProducersConsumers(t *testing.T) {
	g := New()
	d := DataID("shared")
	g.AddEdge(TaskID("prod"), d, Producer, FlowProps{})
	for i := 0; i < 3; i++ {
		g.AddEdge(d, TaskID(name("c", i)), Consumer, FlowProps{})
	}
	if got := g.UseConcurrency(d); got != 3 {
		t.Fatalf("UseConcurrency = %d", got)
	}
	if got := g.UseConcurrency(TaskID("prod")); got != 0 {
		t.Fatalf("UseConcurrency on task = %d", got)
	}
	if p := g.Producers(d); len(p) != 1 || p[0] != TaskID("prod") {
		t.Fatalf("Producers = %v", p)
	}
	if c := g.Consumers(d); len(c) != 3 {
		t.Fatalf("Consumers = %v", c)
	}
}

func TestTaskPropsRatios(t *testing.T) {
	p := TaskProps{Lifetime: 10, ReadOps: 100, WriteOps: 50,
		InVolume: 1000, OutVolume: 500, ReadLatency: 2, WriteLatency: 1}
	if p.ReadRate() != 10 || p.WriteRate() != 5 {
		t.Error("op rates wrong")
	}
	if p.DataReadRate() != 100 || p.DataWriteRate() != 50 {
		t.Error("data rates wrong")
	}
	if p.ReadBlockingFraction() != 0.2 || p.WriteBlockingFraction() != 0.1 {
		t.Error("blocking fractions wrong")
	}
	var zero TaskProps
	if zero.ReadRate() != 0 || zero.ReadBlockingFraction() != 0 {
		t.Error("zero lifetime should give zero rates")
	}
}

func TestFlowPropsDerived(t *testing.T) {
	p := FlowProps{Volume: 1000, Footprint: 250, Latency: 2}
	if p.ReuseFactor() != 4 {
		t.Errorf("ReuseFactor = %v", p.ReuseFactor())
	}
	if p.Rate() != 500 {
		t.Errorf("Rate = %v", p.Rate())
	}
	var zero FlowProps
	if zero.ReuseFactor() != 0 || zero.Rate() != 0 {
		t.Error("zero flow should give zero ratios")
	}
}

func TestBuildFromCollector(t *testing.T) {
	fs := vfs.New()
	if err := fs.AddTier(vfs.NewNFS("nfs")); err != nil {
		t.Fatal(err)
	}
	clk := &iotrace.ManualClock{}
	col := iotrace.MustCollector(blockstats.DefaultConfig())

	// producer writes 400B; consumer reads it twice (reuse).
	col.TaskStarted("producer", clk.Now())
	tr := iotrace.NewTracer("producer", fs, clk, iotrace.TierCost{}, col, "nfs")
	h, err := tr.Open("out.dat", iotrace.WRONLY|iotrace.CREATE)
	if err != nil {
		t.Fatal(err)
	}
	h.Write(400)
	h.Close()
	col.TaskEnded("producer", clk.Now())

	col.TaskStarted("consumer", clk.Now())
	tc := iotrace.NewTracer("consumer", fs, clk, iotrace.TierCost{}, col, "nfs")
	for rep := 0; rep < 2; rep++ {
		rh, err := tc.Open("out.dat", iotrace.RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := rh.Read(100); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		rh.Close()
	}
	col.TaskEnded("consumer", clk.Now())

	g := Build(col)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsDAG() {
		t.Fatal("DFL-DAG must be acyclic")
	}
	prod := g.FindEdge(TaskID("producer"), DataID("out.dat"))
	cons := g.FindEdge(DataID("out.dat"), TaskID("consumer"))
	if prod == nil || cons == nil {
		t.Fatal("missing edges")
	}
	if prod.Props.Volume != 400 {
		t.Errorf("producer volume = %d", prod.Props.Volume)
	}
	if cons.Props.Volume != 800 {
		t.Errorf("consumer volume = %d", cons.Props.Volume)
	}
	// Reading everything twice: reuse factor ~2.
	if rf := cons.Props.ReuseFactor(); rf < 1.8 || rf > 2.2 {
		t.Errorf("ReuseFactor = %v, want ~2", rf)
	}
	dv := g.Vertex(DataID("out.dat"))
	if dv.Data.Size != 400 {
		t.Errorf("data size = %d", dv.Data.Size)
	}
	if dv.Data.Lifetime <= 0 {
		t.Error("data lifetime not set")
	}
	tv := g.Vertex(TaskID("consumer"))
	if tv.Task.Lifetime <= 0 || tv.Task.InVolume != 800 {
		t.Errorf("consumer task props: %+v", tv.Task)
	}
}

func TestInstanceSuffixGroup(t *testing.T) {
	if got := InstanceSuffixGroup(TaskVertex, "indiv#7"); got != "indiv" {
		t.Errorf("got %q", got)
	}
	if got := InstanceSuffixGroup(TaskVertex, "plain"); got != "plain" {
		t.Errorf("got %q", got)
	}
	if got := InstanceSuffixGroup(TaskVertex, "#x"); got != "#x" {
		t.Errorf("leading # should not group, got %q", got)
	}
	if got := InstanceSuffixGroup(DataVertex, "f#1"); got != "f#1" {
		t.Errorf("data grouped: %q", got)
	}
}

func TestTemplateAggregation(t *testing.T) {
	g := New()
	// Three instances of task "sim" each writing its own file, one
	// aggregator consuming all files.
	for i := 0; i < 3; i++ {
		tid := TaskID("sim#" + string(rune('0'+i)))
		v := g.AddTask(tid.Name)
		v.Task.Lifetime = float64(10 * (i + 1)) // 10, 20, 30
		v.Task.OutVolume = 100
		g.AddEdge(tid, DataID(name("f", i)), Producer, FlowProps{Volume: 100})
		g.AddEdge(DataID(name("f", i)), TaskID("agg"), Consumer, FlowProps{Volume: 100})
	}
	tpl := Template(g, nil)
	sim := tpl.Vertex(TaskID("sim"))
	if sim == nil {
		t.Fatal("template vertex missing")
	}
	if sim.Task.Instances != 3 {
		t.Fatalf("Instances = %d", sim.Task.Instances)
	}
	if sim.Task.Lifetime != 20 { // mean of 10,20,30
		t.Fatalf("Lifetime = %v, want mean 20", sim.Task.Lifetime)
	}
	if sim.Task.OutVolume != 300 { // summed
		t.Fatalf("OutVolume = %d, want 300", sim.Task.OutVolume)
	}
	// Data files were not grouped, so edges sim->f0..f2 remain distinct.
	if tpl.OutDegree(TaskID("sim")) != 3 {
		t.Fatalf("OutDegree(sim) = %d", tpl.OutDegree(TaskID("sim")))
	}
}

func TestTemplateMergesParallelEdges(t *testing.T) {
	g := New()
	g.AddEdge(TaskID("w#0"), DataID("f"), Producer, FlowProps{Volume: 10, MeanDistance: 0})
	g.AddEdge(TaskID("w#1"), DataID("f"), Producer, FlowProps{Volume: 30, MeanDistance: 100})
	tpl := Template(g, nil)
	if tpl.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 merged", tpl.NumEdges())
	}
	e := tpl.FindEdge(TaskID("w"), DataID("f"))
	if e.Props.Volume != 40 {
		t.Fatalf("merged volume = %d", e.Props.Volume)
	}
	if e.Props.MeanDistance != 50 {
		t.Fatalf("merged distance = %v, want 50 (mean)", e.Props.MeanDistance)
	}
	if e.Props.Samples != 2 {
		t.Fatalf("samples = %d", e.Props.Samples)
	}
}

func TestTemplateCanFormCycle(t *testing.T) {
	// A control loop unrolled as train#0 -> model0 -> train#1 collapses to a
	// cyclic template train -> model -> train (the paper notes DFL-Ts can
	// have cycles).
	g := New()
	g.AddEdge(TaskID("train#0"), DataID("model"), Producer, FlowProps{})
	g.AddEdge(DataID("model"), TaskID("train#1"), Consumer, FlowProps{})
	tpl := Template(g, nil)
	if tpl.IsDAG() {
		t.Fatal("template should contain a cycle")
	}
}

func TestAverageRuns(t *testing.T) {
	mk := func(vol uint64, lt float64) *Graph {
		g := New()
		v := g.AddTask("t")
		v.Task.Lifetime = lt
		g.AddEdge(TaskID("t"), DataID("d"), Producer, FlowProps{Volume: vol, Latency: lt / 2})
		return g
	}
	avg, err := AverageRuns([]*Graph{mk(100, 10), mk(200, 20), mk(300, 30)})
	if err != nil {
		t.Fatal(err)
	}
	e := avg.FindEdge(TaskID("t"), DataID("d"))
	if e.Props.Volume != 200 {
		t.Fatalf("avg volume = %d, want 200", e.Props.Volume)
	}
	if got := avg.Vertex(TaskID("t")).Task.Lifetime; got != 20 {
		t.Fatalf("avg lifetime = %v, want 20", got)
	}
}

func TestAverageRunsErrors(t *testing.T) {
	if _, err := AverageRuns(nil); err == nil {
		t.Fatal("empty runs accepted")
	}
	a := New()
	a.AddEdge(TaskID("t"), DataID("d"), Producer, FlowProps{})
	b := New()
	b.AddEdge(TaskID("t"), DataID("d2"), Producer, FlowProps{})
	b.AddEdge(TaskID("t"), DataID("d3"), Producer, FlowProps{})
	if _, err := AverageRuns([]*Graph{a, b}); err == nil {
		t.Fatal("structural mismatch accepted")
	}
	c := New()
	c.AddEdge(TaskID("t"), DataID("x"), Producer, FlowProps{})
	if _, err := AverageRuns([]*Graph{a, c}); err == nil {
		t.Fatal("edge mismatch accepted")
	}
}

func TestQuickBuildAlwaysDAG(t *testing.T) {
	// Property: for causally well-formed executions — a file is written only
	// by "earlier" tasks than those that read it, the paper's implicit
	// precondition for DFL-DAG acyclicity — the built graph is an acyclic
	// DAG with correctly-directed edges.
	f := func(ops []uint8) bool {
		col := iotrace.MustCollector(blockstats.DefaultConfig())
		for i, op := range ops {
			ti := i % 5
			fj := int(op) % 7
			task := "t" + string(rune('0'+ti))
			file := "f" + string(rune('0'+fj))
			// Rank tasks at 5*ti and files at 2*fj+1; a task strictly below
			// a file's rank writes it, otherwise it reads it. Every edge then
			// increases rank, which guarantees acyclicity of the execution.
			kind := blockstats.Read
			if 2*fj+1 > 5*ti {
				kind = blockstats.Write
			}
			col.RecordAccess(task, file, 1000, kind, int64(op), 64, float64(i), 0.01)
		}
		g := Build(col)
		if !g.IsDAG() {
			return false
		}
		for _, e := range g.Edges() {
			switch e.Kind {
			case Consumer:
				if e.Src.Kind != DataVertex || e.Dst.Kind != TaskVertex {
					return false
				}
			case Producer:
				if e.Src.Kind != TaskVertex || e.Dst.Kind != DataVertex {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	if TaskVertex.String() != "task" || DataVertex.String() != "data" {
		t.Error("VertexKind strings")
	}
	if Consumer.String() != "consumer" || Producer.String() != "producer" {
		t.Error("EdgeKind strings")
	}
	if TaskID("x").String() != "task:x" {
		t.Error("ID string")
	}
}

func TestQuickTemplateConservation(t *testing.T) {
	// Properties of template aggregation: (a) the template never has more
	// vertices or edges than the instance graph; (b) total volume is
	// conserved; (c) instance counts sum to the original vertex count.
	f := func(edges []uint16) bool {
		g := New()
		for i, e := range edges {
			task := TaskID("w#" + string(rune('a'+int(e)%5)) + "#" + string(rune('0'+i%3)))
			data := DataID("f" + string(rune('0'+int(e)%4)))
			g.AddEdge(task, data, Producer, FlowProps{Volume: uint64(e)})
		}
		tpl := Template(g, nil)
		if tpl.NumVertices() > g.NumVertices() || tpl.NumEdges() > g.NumEdges() {
			return false
		}
		if tpl.TotalVolume() != g.TotalVolume() {
			return false
		}
		var instances int
		for _, v := range tpl.Vertices() {
			if v.ID.Kind == TaskVertex {
				instances += v.Task.Instances
			} else {
				instances += v.Data.Instances
			}
		}
		return instances == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopoSortIsPermutation(t *testing.T) {
	// Property: a successful topological sort contains every vertex exactly
	// once, with all edges forward.
	f := func(n uint8) bool {
		size := int(n%20) + 2
		g := New()
		for i := 0; i < size; i++ {
			g.AddEdge(TaskID("t"+string(rune('0'+i%10))+string(rune('a'+i/10))),
				DataID("d"+string(rune('0'+i%10))+string(rune('a'+i/10))),
				Producer, FlowProps{})
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		seen := make(map[ID]int)
		for i, id := range order {
			seen[id] = i
		}
		if len(seen) != g.NumVertices() {
			return false
		}
		for _, e := range g.Edges() {
			if seen[e.Src] >= seen[e.Dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSavedMatchesBuild(t *testing.T) {
	fs := vfs.New()
	if err := fs.AddTier(vfs.NewNFS("nfs")); err != nil {
		t.Fatal(err)
	}
	clk := &iotrace.ManualClock{}
	col := iotrace.MustCollector(blockstats.DefaultConfig())
	col.TaskStarted("p", 0)
	tr := iotrace.NewTracer("p", fs, clk, iotrace.TierCost{}, col, "nfs")
	h, _ := tr.Open("f", iotrace.WRONLY|iotrace.CREATE)
	h.Write(5000)
	h.Close()
	col.TaskEnded("p", clk.Now())

	direct := Build(col)

	var buf bytes.Buffer
	if err := col.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := iotrace.LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded := BuildSaved(st)
	if loaded.NumVertices() != direct.NumVertices() || loaded.NumEdges() != direct.NumEdges() {
		t.Fatalf("structure differs: %dV/%dE vs %dV/%dE",
			loaded.NumVertices(), loaded.NumEdges(), direct.NumVertices(), direct.NumEdges())
	}
	de := direct.FindEdge(TaskID("p"), DataID("f"))
	le := loaded.FindEdge(TaskID("p"), DataID("f"))
	if le == nil || le.Props.Volume != de.Props.Volume || le.Props.Footprint != de.Props.Footprint {
		t.Fatalf("edge props differ: %+v vs %+v", le, de)
	}
	if loaded.Vertex(TaskID("p")).Task.Lifetime != direct.Vertex(TaskID("p")).Task.Lifetime {
		t.Fatal("lifetime differs")
	}
}

func TestBuildParallelMatchesBuild(t *testing.T) {
	col := iotrace.MustCollector(blockstats.DefaultConfig())
	for i := 0; i < 200; i++ {
		task := "t" + string(rune('0'+i%10))
		file := "f" + string(rune('0'+i%7))
		kind := blockstats.Read
		if i%7 > i%10 {
			kind = blockstats.Write
		}
		col.RecordAccess(task, file, 10000, kind, int64(i*13)%10000, 64, float64(i), 0.01)
		col.TaskStarted(task, 0)
		col.TaskEnded(task, float64(i))
	}
	a := Build(col)
	b := BuildParallel(col)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("structure differs: %dV/%dE vs %dV/%dE",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		be := b.FindEdge(e.Src, e.Dst)
		if be == nil || be.Props != e.Props {
			t.Fatalf("edge %v->%v differs: %+v vs %+v", e.Src, e.Dst, be, e)
		}
	}
	for _, v := range a.Vertices() {
		bv := b.Vertex(v.ID)
		if bv == nil || bv.Task != v.Task || bv.Data != v.Data {
			t.Fatalf("vertex %v differs", v.ID)
		}
	}
}

func TestEdgeDistributions(t *testing.T) {
	mk := func(vol uint64) *Graph {
		g := New()
		g.AddEdge(TaskID("t"), DataID("d"), Producer, FlowProps{Volume: vol})
		return g
	}
	dists := EdgeDistributions([]*Graph{mk(100), mk(200), mk(300)}, nil)
	k := EdgeKey{TaskID("t"), DataID("d")}
	s, ok := dists[k]
	if !ok {
		t.Fatal("edge missing from distributions")
	}
	if s.N != 3 || s.Mean != 200 || s.Min != 100 || s.Max != 300 {
		t.Fatalf("summary = %+v", s)
	}
	// Structurally differing runs: extra edge gets fewer samples.
	g4 := mk(400)
	g4.AddEdge(DataID("d"), TaskID("extra"), Consumer, FlowProps{Volume: 7})
	dists = EdgeDistributions([]*Graph{mk(100), g4}, func(e *Edge) float64 {
		return float64(e.Props.Volume)
	})
	if dists[EdgeKey{DataID("d"), TaskID("extra")}].N != 1 {
		t.Fatal("extra edge sample count wrong")
	}
}
