package dfl

import (
	"fmt"
	"slices"
	"sync"
)

// Index is the graph's compact indexed core: a dense-integer view of the
// vertex set plus CSR-style adjacency, sorted vertex/edge snapshots, the
// deterministic topological order, and per-graph aggregates (total volume,
// best flow rate, distinct producer/consumer sets per data vertex).
//
// An Index is an immutable snapshot — it is built once per graph generation
// (lazily, on first query) and shared by every reader, so analysis passes
// that used to re-sort edges or re-walk maps per call now cost one slice
// iteration. Mutating the graph (AddEdge, a new vertex, or an explicit
// Invalidate) discards the snapshot; the next query rebuilds it. All slices
// returned by Index (and by the Graph query methods backed by it) are shared
// views: callers must not modify them.
//
// Dense vertex indices follow the canonical (kind, name) order, so index
// comparisons agree with ID ordering: tasks sort before data, names
// ascending within a kind.
type Index struct {
	ids   []ID
	pos   map[ID]int32
	verts []*Vertex
	// nTasks splits verts/ids: [0,nTasks) are tasks, [nTasks,n) are data.
	nTasks int

	edges []*Edge // sorted by (src, dst)

	// CSR adjacency. Out edges of dense vertex i are
	// outEdges[outOff[i]:outOff[i+1]], in the per-vertex insertion order the
	// map-based adjacency had; outDst holds the matching destination dense
	// indices so relaxation loops never touch a map. Likewise for in/inSrc.
	outOff, inOff     []int32
	outEdges, inEdges []*Edge
	outDst, inSrc     []int32

	topo    []int32
	topoIDs []ID
	topoErr error

	totalVolume uint64
	bestRate    float64

	// prod/cons hold, per dense data vertex index, the distinct producer and
	// consumer task IDs, sorted. Entries for task vertices are nil.
	prod, cons [][]ID

	fpOnce sync.Once
	fp     uint64
}

// Index returns the graph's indexed core, building it on first use. The
// returned snapshot is safe for concurrent readers; it is discarded when the
// graph mutates.
func (g *Graph) Index() *Index {
	if ix := g.idx.Load(); ix != nil {
		return ix
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if ix := g.idx.Load(); ix != nil {
		return ix
	}
	ix := buildIndex(g)
	g.idx.Store(ix)
	return ix
}

// invalidate discards the cached index; the next query rebuilds it.
func (g *Graph) invalidate() {
	g.idx.Store(nil)
}

// Invalidate discards the graph's cached indexed core. Structural mutations
// (AddEdge, new vertices) invalidate automatically; call this only after
// mutating vertex or edge properties through previously-obtained pointers
// once analysis queries have already run (e.g. edge props via FindEdge).
func (g *Graph) Invalidate() { g.invalidate() }

func buildIndex(g *Graph) *Index {
	n := len(g.vertices)
	ix := &Index{
		ids: make([]ID, 0, n),
		pos: make(map[ID]int32, n),
	}
	for id := range g.vertices {
		ix.ids = append(ix.ids, id)
	}
	slices.SortFunc(ix.ids, func(a, b ID) int {
		if a.Kind != b.Kind {
			return int(a.Kind) - int(b.Kind)
		}
		if a.Name < b.Name {
			return -1
		}
		if a.Name > b.Name {
			return 1
		}
		return 0
	})
	ix.verts = make([]*Vertex, n)
	for i, id := range ix.ids {
		ix.pos[id] = int32(i)
		ix.verts[i] = g.vertices[id]
		if id.Kind == TaskVertex {
			ix.nTasks = i + 1
		}
	}

	// CSR adjacency, preserving each vertex's insertion-order edge lists.
	m := len(g.edges)
	ix.outOff = make([]int32, n+1)
	ix.inOff = make([]int32, n+1)
	ix.outEdges = make([]*Edge, 0, m)
	ix.inEdges = make([]*Edge, 0, m)
	ix.outDst = make([]int32, 0, m)
	ix.inSrc = make([]int32, 0, m)
	for i, id := range ix.ids {
		for _, e := range g.out[id] {
			ix.outEdges = append(ix.outEdges, e)
			ix.outDst = append(ix.outDst, ix.pos[e.Dst])
		}
		ix.outOff[i+1] = int32(len(ix.outEdges))
		for _, e := range g.in[id] {
			ix.inEdges = append(ix.inEdges, e)
			ix.inSrc = append(ix.inSrc, ix.pos[e.Src])
		}
		ix.inOff[i+1] = int32(len(ix.inEdges))
	}

	// Sorted edge snapshot: order by (src, dst) using dense indices, which
	// agree with ID ordering.
	ix.edges = make([]*Edge, m)
	copy(ix.edges, g.edges)
	slices.SortFunc(ix.edges, func(a, b *Edge) int {
		if c := ix.pos[a.Src] - ix.pos[b.Src]; c != 0 {
			return int(c)
		}
		return int(ix.pos[a.Dst] - ix.pos[b.Dst])
	})

	// Aggregates: one pass over the edge set.
	for _, e := range g.edges {
		ix.totalVolume += e.Props.Volume
		if r := e.Props.Rate(); r > ix.bestRate {
			ix.bestRate = r
		}
	}

	ix.buildTopo()
	ix.buildNeighbors()
	return ix
}

// buildTopo computes the deterministic Kahn order: the queue is seeded with
// zero-indegree vertices in canonical order and each pop appends its freed
// successors sorted — identical to the order the map-based TopoSort produced,
// but over dense integers.
func (ix *Index) buildTopo() {
	n := len(ix.ids)
	indeg := make([]int32, n)
	for i := range indeg {
		indeg[i] = ix.inOff[i+1] - ix.inOff[i]
	}
	queue := make([]int32, 0, n)
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int32, 0, n)
	var freed []int32
	for head := 0; head < len(queue); head++ {
		vi := queue[head]
		order = append(order, vi)
		freed = freed[:0]
		for _, di := range ix.outDst[ix.outOff[vi]:ix.outOff[vi+1]] {
			indeg[di]--
			if indeg[di] == 0 {
				freed = append(freed, di)
			}
		}
		slices.Sort(freed)
		queue = append(queue, freed...)
	}
	if len(order) != n {
		ix.topoErr = fmt.Errorf("dfl: graph has a cycle (%d of %d vertices ordered)",
			len(order), n)
		return
	}
	ix.topo = order
	ix.topoIDs = make([]ID, n)
	for i, vi := range order {
		ix.topoIDs[i] = ix.ids[vi]
	}
}

// buildNeighbors computes, per data vertex, the distinct producer and
// consumer task sets in canonical order.
func (ix *Index) buildNeighbors() {
	n := len(ix.ids)
	ix.prod = make([][]ID, n)
	ix.cons = make([][]ID, n)
	var scratch []int32
	distinct := func(poss []int32) []ID {
		if len(poss) == 0 {
			return nil
		}
		scratch = append(scratch[:0], poss...)
		slices.Sort(scratch)
		scratch = slices.Compact(scratch)
		out := make([]ID, len(scratch))
		for i, p := range scratch {
			out[i] = ix.ids[p]
		}
		return out
	}
	for i := ix.nTasks; i < n; i++ {
		vi := int32(i)
		ix.prod[i] = distinct(ix.inSrc[ix.inOff[vi]:ix.inOff[vi+1]])
		ix.cons[i] = distinct(ix.outDst[ix.outOff[vi]:ix.outOff[vi+1]])
	}
}

// Len returns the number of vertices.
func (ix *Index) Len() int { return len(ix.ids) }

// Pos returns the dense index of id, or -1 when absent.
func (ix *Index) Pos(id ID) int32 {
	if p, ok := ix.pos[id]; ok {
		return p
	}
	return -1
}

// IDAt returns the ID at dense index i.
func (ix *Index) IDAt(i int32) ID { return ix.ids[i] }

// VertexAt returns the vertex at dense index i.
func (ix *Index) VertexAt(i int32) *Vertex { return ix.verts[i] }

// Topo returns the deterministic topological order as dense indices, or the
// cycle error. The slice is shared — do not modify.
func (ix *Index) Topo() ([]int32, error) { return ix.topo, ix.topoErr }

// Out returns the outgoing edges of dense vertex i together with their
// destination dense indices. Both slices are shared — do not modify.
func (ix *Index) Out(i int32) ([]*Edge, []int32) {
	lo, hi := ix.outOff[i], ix.outOff[i+1]
	return ix.outEdges[lo:hi], ix.outDst[lo:hi]
}

// In returns the incoming edges of dense vertex i together with their source
// dense indices. Both slices are shared — do not modify.
func (ix *Index) In(i int32) ([]*Edge, []int32) {
	lo, hi := ix.inOff[i], ix.inOff[i+1]
	return ix.inEdges[lo:hi], ix.inSrc[lo:hi]
}

// OutDegree returns the out-degree of dense vertex i.
func (ix *Index) OutDegree(i int32) int { return int(ix.outOff[i+1] - ix.outOff[i]) }

// InDegree returns the in-degree of dense vertex i.
func (ix *Index) InDegree(i int32) int { return int(ix.inOff[i+1] - ix.inOff[i]) }

// Fingerprint returns a 64-bit content hash of the snapshot, covering every
// vertex, edge, and property in canonical order. Two graphs with identical
// content hash equal; it keys analysis memoization (advisor.Memo), so
// fault-sweep seeds that produce identical DFLs skip re-analysis.
func (ix *Index) Fingerprint() uint64 {
	ix.fpOnce.Do(func() { ix.fp = fingerprint(ix) })
	return ix.fp
}
