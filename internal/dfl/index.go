package dfl

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Index is the graph's compact indexed core: a dense-integer view of the
// vertex set plus CSR-style adjacency, sorted vertex/edge snapshots, the
// deterministic topological order, and per-graph aggregates (total volume,
// best flow rate, distinct producer/consumer sets per data vertex).
//
// An Index is an immutable snapshot shared by every reader. Snapshots are
// derived incrementally: mutating the graph (AddEdge, a new vertex,
// SetEdgeProps) accumulates a pending delta, and the next query derives a new
// snapshot from the previous one in O(delta) — new vertices are appended as
// overlay slots past the frozen canonical base, new edges extend shared
// seq-marked adjacency lists, the topological order grows by an exact suffix,
// and aggregates/fingerprint update from running sums. When the overlay
// outgrows the base (or the delta is not suffix-extendable) the snapshot is
// compacted: a full rebuild that re-freezes everything in canonical order.
// Old snapshots stay fully readable throughout — all shared structures are
// append-only with per-snapshot visibility bounds, so concurrent readers
// pinned to stale snapshots never observe later mutations.
//
// Dense vertex indices (slots) are stable for the lifetime of an epoch (the
// span between compactions): base slots [0,baseN) follow the canonical
// (kind, name) order frozen at compaction; overlay slots [baseN,n) follow
// insertion order. Canonical snapshots (fresh from compaction) additionally
// guarantee that slot order IS canonical order. Sorted views (Vertices,
// Edges) are canonical on every snapshot; on overlay snapshots they are
// materialized lazily in O(n).
//
// All slices returned by Index (and by the Graph query methods backed by it)
// are shared views: callers must not modify them.
type Index struct {
	// Base: frozen at the last compaction, shared by every snapshot of the
	// epoch. ids/verts are in canonical (kind, name) order.
	ids   []ID
	pos   map[ID]int32
	verts []*Vertex
	// nTasks splits the base: [0,nTasks) are tasks, [nTasks,baseN) are data.
	nTasks int
	baseN  int32

	edges []*Edge // base edges sorted by (src, dst); see edited for overrides

	// Base CSR adjacency. Out edges of base vertex i are
	// outEdges[outOff[i]:outOff[i+1]], in the per-vertex insertion order the
	// map-based adjacency had; outDst holds the matching destination slots so
	// relaxation loops never touch a map. Likewise for in/inSrc.
	outOff, inOff     []int32
	outEdges, inEdges []*Edge
	outDst, inSrc     []int32

	// Overlay: the delta accumulated since compaction, visible to this
	// snapshot. canonical is true when the overlay is empty (slot order is
	// canonical and the base arrays describe the graph exactly).
	canonical bool
	n         int // total vertices (base + overlay)
	nTasksAll int // total task vertices
	mEdges    int // total edges

	// extraIDs/extraVerts/extraAdj are prefixes of the epoch's shared
	// append-only overlay arrays, captured at derivation; index by
	// slot-baseN. extraEdges is the epoch's appended-edge log; seqMark bounds
	// which entries this snapshot sees (seq < seqMark).
	extraIDs   []ID
	extraVerts []*Vertex
	extraAdj   []*slotAdj
	extraEdges []*Edge
	seqMark    int32

	// posExtra maps overlay vertex IDs to slots. It is shared by the whole
	// epoch; entries with slot >= n belong to later snapshots and are
	// filtered out by Pos.
	posExtra *sync.Map

	// touched overrides adjacency for slots whose lists could not stay
	// shared: base slots that gained edges, and any slot with an edited edge.
	// Entries are immutable; the map is cloned copy-on-write per derivation.
	touched map[int32]*slotOverlay

	// edited maps edge pointers stored in the shared base/extra arrays to
	// their current copy-on-write replacement (SetEdgeProps).
	edited map[*Edge]*Edge

	// editedVerts maps vertex pointers stored in the shared verts/extraVerts
	// arrays to their current copy-on-write replacement (SetTaskProps /
	// SetDataProps).
	editedVerts map[*Vertex]*Vertex

	topo    []int32
	topoIDs []ID
	topoErr error

	totalVolume uint64
	bestRate    float64

	// prod/cons hold, per base data slot, the distinct producer and consumer
	// task IDs, sorted. Valid only for untouched base slots; overlay slots
	// are computed on demand.
	prod, cons [][]ID

	fpOnce  sync.Once
	fpReady atomic.Bool
	vertSum uint64
	edgeSum uint64
	fp      uint64

	vertsOnce   sync.Once
	sortedVerts []*Vertex
	sortedNT    int
	edgesOnce   sync.Once
	sortedEdges []*Edge
}

// Index returns the graph's indexed core, deriving a fresh snapshot from the
// pending mutation delta when the graph changed. The returned snapshot is
// safe for concurrent readers and stays valid (and readable) after further
// mutations.
func (g *Graph) Index() *Index {
	if ix := g.idx.Load(); ix != nil && !g.dirty.Load() {
		return ix
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if ix := g.idx.Load(); ix != nil && !g.dirty.Load() {
		return ix
	}
	ix := g.derive()
	g.idx.Store(ix)
	g.dirty.Store(false)
	return ix
}

// Invalidate requests a full rebuild of the indexed core, discarding the
// incremental delta. Structural mutations (AddEdge, new vertices) and
// SetEdgeProps flow through the O(delta) derivation automatically; call this
// only after mutating vertex or edge properties in place through
// previously-obtained pointers once analysis queries have already run (e.g.
// edge props via a FindEdge pointer) — the delta tracker cannot see those.
func (g *Graph) Invalidate() {
	g.force = true
	g.dirty.Store(true)
}

// cmpID is the canonical vertex order: tasks before data, names ascending.
func cmpID(a, b ID) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.Name < b.Name {
		return -1
	}
	if a.Name > b.Name {
		return 1
	}
	return 0
}

// cmpEdge is the canonical edge order: by (src, dst).
func cmpEdge(a, b *Edge) int {
	if c := cmpID(a.Src, b.Src); c != 0 {
		return c
	}
	return cmpID(a.Dst, b.Dst)
}

// buildIndex is the full (compacting) rebuild: everything re-frozen in
// canonical order with an empty overlay. It is also the correctness
// reference the incremental derivation is equivalence-tested against.
func buildIndex(g *Graph) *Index {
	n := len(g.vertices)
	ix := &Index{
		ids:       make([]ID, 0, n),
		pos:       make(map[ID]int32, n),
		canonical: true,
	}
	for id := range g.vertices {
		ix.ids = append(ix.ids, id)
	}
	slices.SortFunc(ix.ids, cmpID)
	ix.verts = make([]*Vertex, n)
	for i, id := range ix.ids {
		ix.pos[id] = int32(i)
		ix.verts[i] = g.vertices[id]
		if id.Kind == TaskVertex {
			ix.nTasks = i + 1
		}
	}
	ix.baseN = int32(n)
	ix.n = n
	ix.nTasksAll = ix.nTasks

	// CSR adjacency, preserving each vertex's insertion-order edge lists.
	m := len(g.edges)
	ix.mEdges = m
	ix.outOff = make([]int32, n+1)
	ix.inOff = make([]int32, n+1)
	ix.outEdges = make([]*Edge, 0, m)
	ix.inEdges = make([]*Edge, 0, m)
	ix.outDst = make([]int32, 0, m)
	ix.inSrc = make([]int32, 0, m)
	for i, id := range ix.ids {
		for _, e := range g.out[id] {
			ix.outEdges = append(ix.outEdges, e)
			ix.outDst = append(ix.outDst, ix.pos[e.Dst])
		}
		ix.outOff[i+1] = int32(len(ix.outEdges))
		for _, e := range g.in[id] {
			ix.inEdges = append(ix.inEdges, e)
			ix.inSrc = append(ix.inSrc, ix.pos[e.Src])
		}
		ix.inOff[i+1] = int32(len(ix.inEdges))
	}

	// Sorted edge snapshot: order by (src, dst) using dense indices, which
	// agree with ID ordering.
	ix.edges = make([]*Edge, m)
	copy(ix.edges, g.edges)
	slices.SortFunc(ix.edges, func(a, b *Edge) int {
		if c := ix.pos[a.Src] - ix.pos[b.Src]; c != 0 {
			return int(c)
		}
		return int(ix.pos[a.Dst] - ix.pos[b.Dst])
	})

	// Aggregates: one pass over the edge set.
	for _, e := range g.edges {
		ix.totalVolume += e.Props.Volume
		if r := e.Props.Rate(); r > ix.bestRate {
			ix.bestRate = r
		}
	}

	ix.buildTopo()
	ix.buildNeighbors()
	return ix
}

// buildTopo computes the deterministic Kahn order: the queue is seeded with
// zero-indegree vertices in canonical order and each pop appends its freed
// successors sorted — identical to the order the map-based TopoSort produced,
// but over dense integers.
func (ix *Index) buildTopo() {
	n := len(ix.ids)
	indeg := make([]int32, n)
	for i := range indeg {
		indeg[i] = ix.inOff[i+1] - ix.inOff[i]
	}
	queue := make([]int32, 0, n)
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int32, 0, n)
	var freed []int32
	for head := 0; head < len(queue); head++ {
		vi := queue[head]
		order = append(order, vi)
		freed = freed[:0]
		for _, di := range ix.outDst[ix.outOff[vi]:ix.outOff[vi+1]] {
			indeg[di]--
			if indeg[di] == 0 {
				freed = append(freed, di)
			}
		}
		slices.Sort(freed)
		queue = append(queue, freed...)
	}
	if len(order) != n {
		ix.topoErr = fmt.Errorf("dfl: graph has a cycle (%d of %d vertices ordered)",
			len(order), n)
		return
	}
	ix.topo = order
	ix.topoIDs = make([]ID, n)
	for i, vi := range order {
		ix.topoIDs[i] = ix.ids[vi]
	}
}

// buildNeighbors computes, per data vertex, the distinct producer and
// consumer task sets in canonical order.
func (ix *Index) buildNeighbors() {
	n := len(ix.ids)
	ix.prod = make([][]ID, n)
	ix.cons = make([][]ID, n)
	var scratch []int32
	distinct := func(poss []int32) []ID {
		if len(poss) == 0 {
			return nil
		}
		scratch = append(scratch[:0], poss...)
		slices.Sort(scratch)
		scratch = slices.Compact(scratch)
		out := make([]ID, len(scratch))
		for i, p := range scratch {
			out[i] = ix.ids[p]
		}
		return out
	}
	for i := ix.nTasks; i < n; i++ {
		vi := int32(i)
		ix.prod[i] = distinct(ix.inSrc[ix.inOff[vi]:ix.inOff[vi+1]])
		ix.cons[i] = distinct(ix.outDst[ix.outOff[vi]:ix.outOff[vi+1]])
	}
}

// Len returns the number of vertices.
func (ix *Index) Len() int { return ix.n }

// Pos returns the dense slot of id, or -1 when absent from this snapshot.
func (ix *Index) Pos(id ID) int32 {
	if p, ok := ix.pos[id]; ok {
		return p
	}
	if ix.posExtra != nil {
		if v, ok := ix.posExtra.Load(id); ok {
			if p := v.(int32); int(p) < ix.n {
				return p
			}
		}
	}
	return -1
}

// IDAt returns the ID at dense slot i.
func (ix *Index) IDAt(i int32) ID {
	if i < ix.baseN {
		return ix.ids[i]
	}
	return ix.extraIDs[i-ix.baseN]
}

// VertexAt returns the vertex at dense slot i, with copy-on-write property
// edits applied.
func (ix *Index) VertexAt(i int32) *Vertex {
	var v *Vertex
	if i < ix.baseN {
		v = ix.verts[i]
	} else {
		v = ix.extraVerts[i-ix.baseN]
	}
	if ix.editedVerts != nil {
		if c, ok := ix.editedVerts[v]; ok {
			return c
		}
	}
	return v
}

// Topo returns the deterministic topological order as dense slots, or the
// cycle error. The slice is shared — do not modify.
func (ix *Index) Topo() ([]int32, error) { return ix.topo, ix.topoErr }

func (ix *Index) overlayFor(i int32) *slotOverlay {
	if ix.touched == nil {
		return nil
	}
	return ix.touched[i]
}

// Out returns the outgoing edges of dense slot i together with their
// destination slots. Both slices are shared — do not modify.
func (ix *Index) Out(i int32) ([]*Edge, []int32) {
	if ov := ix.overlayFor(i); ov != nil {
		return ov.outE, ov.outD
	}
	if i < ix.baseN {
		lo, hi := ix.outOff[i], ix.outOff[i+1]
		return ix.outEdges[lo:hi], ix.outDst[lo:hi]
	}
	h := ix.extraAdj[i-ix.baseN].out.Load()
	if h == nil {
		return nil, nil
	}
	k := h.visible(ix.seqMark)
	return h.edges[:k], h.peers[:k]
}

// In returns the incoming edges of dense slot i together with their source
// slots. Both slices are shared — do not modify.
func (ix *Index) In(i int32) ([]*Edge, []int32) {
	if ov := ix.overlayFor(i); ov != nil {
		return ov.inE, ov.inS
	}
	if i < ix.baseN {
		lo, hi := ix.inOff[i], ix.inOff[i+1]
		return ix.inEdges[lo:hi], ix.inSrc[lo:hi]
	}
	h := ix.extraAdj[i-ix.baseN].in.Load()
	if h == nil {
		return nil, nil
	}
	k := h.visible(ix.seqMark)
	return h.edges[:k], h.peers[:k]
}

// OutDegree returns the out-degree of dense slot i.
func (ix *Index) OutDegree(i int32) int {
	_, d := ix.Out(i)
	return len(d)
}

// InDegree returns the in-degree of dense slot i.
func (ix *Index) InDegree(i int32) int {
	_, s := ix.In(i)
	return len(s)
}

// canonVerts returns all vertices in canonical (kind, name) order and the
// task count. On canonical snapshots this is the base array; on overlay
// snapshots the merged view is materialized once, lazily.
func (ix *Index) canonVerts() ([]*Vertex, int) {
	if ix.canonical {
		return ix.verts, ix.nTasks
	}
	ix.vertsOnce.Do(func() {
		repl := func(v *Vertex) *Vertex {
			if c, ok := ix.editedVerts[v]; ok {
				return c
			}
			return v
		}
		base := ix.verts
		if len(ix.editedVerts) > 0 {
			base = make([]*Vertex, len(ix.verts))
			for i, v := range ix.verts {
				base[i] = repl(v)
			}
		}
		extras := make([]*Vertex, len(ix.extraVerts))
		for i, v := range ix.extraVerts {
			extras[i] = repl(v)
		}
		slices.SortFunc(extras, func(a, b *Vertex) int { return cmpID(a.ID, b.ID) })
		merged := make([]*Vertex, 0, ix.n)
		i, j := 0, 0
		for i < len(base) && j < len(extras) {
			if cmpID(base[i].ID, extras[j].ID) <= 0 {
				merged = append(merged, base[i])
				i++
			} else {
				merged = append(merged, extras[j])
				j++
			}
		}
		merged = append(merged, base[i:]...)
		merged = append(merged, extras[j:]...)
		ix.sortedVerts = merged
		ix.sortedNT = ix.nTasksAll
	})
	return ix.sortedVerts, ix.sortedNT
}

// canonEdges returns all edges in canonical (src, dst) order with
// copy-on-write edits applied. On canonical snapshots this is the base
// array; on overlay snapshots the merged view is materialized once, lazily.
func (ix *Index) canonEdges() []*Edge {
	if ix.canonical {
		return ix.edges
	}
	ix.edgesOnce.Do(func() {
		repl := func(e *Edge) *Edge {
			if c, ok := ix.edited[e]; ok {
				return c
			}
			return e
		}
		base := ix.edges
		if len(ix.edited) > 0 {
			base = make([]*Edge, len(ix.edges))
			for i, e := range ix.edges {
				base[i] = repl(e)
			}
		}
		extras := make([]*Edge, len(ix.extraEdges))
		for i, e := range ix.extraEdges {
			extras[i] = repl(e)
		}
		slices.SortFunc(extras, cmpEdge)
		merged := make([]*Edge, 0, len(base)+len(extras))
		i, j := 0, 0
		for i < len(base) && j < len(extras) {
			if cmpEdge(base[i], extras[j]) <= 0 {
				merged = append(merged, base[i])
				i++
			} else {
				merged = append(merged, extras[j])
				j++
			}
		}
		merged = append(merged, base[i:]...)
		merged = append(merged, extras[j:]...)
		ix.sortedEdges = merged
	})
	return ix.sortedEdges
}

// distinctTasks maps peer slots to their IDs, sorted canonically and
// deduplicated — the on-demand form of the cached prod/cons sets.
func (ix *Index) distinctTasks(peers []int32) []ID {
	if len(peers) == 0 {
		return nil
	}
	ids := make([]ID, len(peers))
	for i, p := range peers {
		ids[i] = ix.IDAt(p)
	}
	slices.SortFunc(ids, cmpID)
	return slices.Compact(ids)
}

// producersFor returns the distinct producer task IDs of data slot p.
func (ix *Index) producersFor(p int32) []ID {
	if p < ix.baseN && ix.overlayFor(p) == nil {
		return ix.prod[p]
	}
	_, src := ix.In(p)
	return ix.distinctTasks(src)
}

// consumersFor returns the distinct consumer task IDs of data slot p.
func (ix *Index) consumersFor(p int32) []ID {
	if p < ix.baseN && ix.overlayFor(p) == nil {
		return ix.cons[p]
	}
	_, dst := ix.Out(p)
	return ix.distinctTasks(dst)
}

// Fingerprint returns a 64-bit content hash of the snapshot, covering every
// vertex, edge, and property. It is a commutative multiset hash, so two
// graphs with identical content hash equal regardless of construction order,
// and incremental snapshots derive it in O(delta) from the previous sums. It
// keys analysis memoization (advisor.Memo), so fault-sweep seeds that produce
// identical DFLs skip re-analysis.
func (ix *Index) Fingerprint() uint64 {
	if ix.fpReady.Load() {
		return ix.fp
	}
	ix.fpOnce.Do(func() {
		if ix.fpReady.Load() {
			return
		}
		vs, es := fingerprintSums(ix)
		ix.vertSum, ix.edgeSum = vs, es
		ix.fp = combineFingerprint(ix.n, ix.mEdges, vs, es)
		ix.fpReady.Store(true)
	})
	return ix.fp
}
