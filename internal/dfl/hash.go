package dfl

import (
	"encoding/binary"
	"math"
)

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// hasher accumulates an FNV-1a 64 hash over typed fields.
type hasher uint64

func (h *hasher) bytes(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x = (x ^ uint64(b)) * fnv64Prime
	}
	*h = hasher(x)
}

func (h *hasher) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.bytes(buf[:])
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.bytes([]byte(s))
}

func (h *hasher) id(id ID) {
	h.bytes([]byte{byte(id.Kind)})
	h.str(id.Name)
}

// fmix64 is the splitmix64/MurmurHash3 finalizer: a cheap bijective mixer
// that spreads per-item FNV hashes over the full 64-bit space before they are
// summed, so the multiset combination below stays collision-resistant.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vertexHash is the content hash of one vertex: its ID plus every lifecycle
// property. Items are hashed independently so the graph fingerprint can be
// maintained incrementally — adding or editing a vertex adjusts one term.
func vertexHash(v *Vertex) uint64 {
	h := hasher(fnv64Offset)
	h.id(v.ID)
	switch v.ID.Kind {
	case TaskVertex:
		p := v.Task
		h.f64(p.Lifetime)
		h.u64(p.ReadOps)
		h.u64(p.WriteOps)
		h.u64(p.InVolume)
		h.u64(p.OutVolume)
		h.f64(p.ReadLatency)
		h.f64(p.WriteLatency)
		h.u64(uint64(p.Instances))
	case DataVertex:
		p := v.Data
		h.u64(uint64(p.Size))
		h.f64(p.Lifetime)
		h.u64(uint64(p.Instances))
	}
	return fmix64(uint64(h))
}

// edgeHash is the content hash of one edge: endpoints, kind, and flow
// properties, independent of the edge's position in any snapshot order.
func edgeHash(e *Edge) uint64 {
	h := hasher(fnv64Offset)
	h.id(e.Src)
	h.id(e.Dst)
	h.bytes([]byte{byte(e.Kind)})
	p := e.Props
	h.u64(p.Ops)
	h.u64(p.Volume)
	h.u64(p.Footprint)
	h.f64(p.Latency)
	h.f64(p.MeanDistance)
	h.f64(p.ZeroDistFrac)
	h.f64(p.SmallDistFrac)
	h.u64(uint64(p.Samples))
	return fmix64(uint64(h))
}

// combineFingerprint folds the multiset sums and the set sizes into the final
// 64-bit content hash. Because the per-item sums are commutative (wrapping
// uint64 addition), two graphs with identical vertex/edge content hash equal
// regardless of construction order, and an incremental snapshot can derive
// the next fingerprint from the previous sums in O(delta): add the hashes of
// new items, subtract the old and add the new hash of edited items.
func combineFingerprint(nVerts, nEdges int, vertSum, edgeSum uint64) uint64 {
	h := hasher(fnv64Offset)
	h.u64(uint64(nVerts))
	h.u64(vertSum)
	h.u64(uint64(nEdges))
	h.u64(edgeSum)
	return fmix64(uint64(h))
}

// fingerprintSums computes the multiset vertex/edge hash sums of a snapshot
// from scratch — the full-rebuild reference the incremental path is derived
// from (and equivalence-tested against).
func fingerprintSums(ix *Index) (vertSum, edgeSum uint64) {
	for _, v := range ix.verts {
		vertSum += vertexHash(v)
	}
	for _, v := range ix.extraVerts {
		vertSum += vertexHash(v)
	}
	for _, e := range ix.edges {
		edgeSum += edgeHash(e)
	}
	for _, e := range ix.extraEdges {
		edgeSum += edgeHash(e)
	}
	for o, c := range ix.edited {
		edgeSum += edgeHash(c) - edgeHash(o)
	}
	for o, c := range ix.editedVerts {
		vertSum += vertexHash(c) - vertexHash(o)
	}
	return vertSum, edgeSum
}

// Fingerprint returns the graph's 64-bit content hash (see Index.Fingerprint).
func (g *Graph) Fingerprint() uint64 { return g.Index().Fingerprint() }
