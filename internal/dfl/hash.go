package dfl

import (
	"encoding/binary"
	"math"
)

// fnv64Offset and fnv64Prime are the FNV-1a 64-bit parameters.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// hasher accumulates an FNV-1a 64 hash over typed fields.
type hasher uint64

func (h *hasher) bytes(p []byte) {
	x := uint64(*h)
	for _, b := range p {
		x = (x ^ uint64(b)) * fnv64Prime
	}
	*h = hasher(x)
}

func (h *hasher) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.bytes(buf[:])
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.bytes([]byte(s))
}

func (h *hasher) id(id ID) {
	h.bytes([]byte{byte(id.Kind)})
	h.str(id.Name)
}

// fingerprint hashes the whole graph snapshot — vertex and edge sets with all
// lifecycle properties — in canonical order, so structurally and numerically
// identical graphs collide exactly and any content difference (a property, a
// vertex, an edge) changes the hash.
func fingerprint(ix *Index) uint64 {
	h := hasher(fnv64Offset)
	h.u64(uint64(len(ix.ids)))
	for _, v := range ix.verts {
		h.id(v.ID)
		switch v.ID.Kind {
		case TaskVertex:
			p := v.Task
			h.f64(p.Lifetime)
			h.u64(p.ReadOps)
			h.u64(p.WriteOps)
			h.u64(p.InVolume)
			h.u64(p.OutVolume)
			h.f64(p.ReadLatency)
			h.f64(p.WriteLatency)
			h.u64(uint64(p.Instances))
		case DataVertex:
			p := v.Data
			h.u64(uint64(p.Size))
			h.f64(p.Lifetime)
			h.u64(uint64(p.Instances))
		}
	}
	h.u64(uint64(len(ix.edges)))
	for _, e := range ix.edges {
		h.id(e.Src)
		h.id(e.Dst)
		h.bytes([]byte{byte(e.Kind)})
		p := e.Props
		h.u64(p.Ops)
		h.u64(p.Volume)
		h.u64(p.Footprint)
		h.f64(p.Latency)
		h.f64(p.MeanDistance)
		h.f64(p.ZeroDistFrac)
		h.f64(p.SmallDistFrac)
		h.u64(uint64(p.Samples))
	}
	return uint64(h)
}

// Fingerprint returns the graph's 64-bit content hash (see Index.Fingerprint).
func (g *Graph) Fingerprint() uint64 { return g.Index().Fingerprint() }
