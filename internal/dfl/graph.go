// Package dfl implements data flow lifecycle graphs (§4 of the DataLife
// paper): property graphs whose vertices are tasks and data files and whose
// directed edges are producer (task→data) and consumer (data→task) flow
// relations, annotated with lifecycle properties derived from the collector's
// constant-space histograms.
//
// The package provides the DFL-DAG built from one execution, lifecycle
// template (DFL-T) aggregation that merges instances of the same task, and
// averaged graphs over multiple runs.
package dfl

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// VertexKind distinguishes the two vertex sets D (data) and T (tasks) of §4.1.
type VertexKind uint8

const (
	// TaskVertex is a workflow task instance.
	TaskVertex VertexKind = iota
	// DataVertex is a data object (a file, in this paper).
	DataVertex
)

func (k VertexKind) String() string {
	if k == TaskVertex {
		return "task"
	}
	return "data"
}

// ID uniquely names a vertex. Task and data namespaces are disjoint.
type ID struct {
	Kind VertexKind
	Name string
}

// TaskID builds the ID of a task vertex.
func TaskID(name string) ID { return ID{TaskVertex, name} }

// DataID builds the ID of a data vertex.
func DataID(name string) ID { return ID{DataVertex, name} }

func (id ID) String() string { return id.Kind.String() + ":" + id.Name }

// TaskProps are lifecycle properties of a task vertex (§4.2).
type TaskProps struct {
	// Lifetime is the task execution time in seconds.
	Lifetime float64
	// ReadOps and WriteOps are total I/O operation counts.
	ReadOps, WriteOps uint64
	// InVolume and OutVolume are total consumed/produced bytes.
	InVolume, OutVolume uint64
	// ReadLatency and WriteLatency are total blocking seconds.
	ReadLatency, WriteLatency float64
	// Instances counts merged task instances (1 in a DFL-DAG, >=1 in a DFL-T).
	Instances int
}

// ReadRate is the ratio of read operations to task time (ops/s).
func (p TaskProps) ReadRate() float64 { return safeDiv(float64(p.ReadOps), p.Lifetime) }

// WriteRate is the ratio of write operations to task time (ops/s).
func (p TaskProps) WriteRate() float64 { return safeDiv(float64(p.WriteOps), p.Lifetime) }

// DataReadRate is the ratio of read volume to task time (B/s).
func (p TaskProps) DataReadRate() float64 { return safeDiv(float64(p.InVolume), p.Lifetime) }

// DataWriteRate is the ratio of write volume to task time (B/s).
func (p TaskProps) DataWriteRate() float64 { return safeDiv(float64(p.OutVolume), p.Lifetime) }

// ReadBlockingFraction is the fraction of task time spent blocked in reads.
func (p TaskProps) ReadBlockingFraction() float64 { return safeDiv(p.ReadLatency, p.Lifetime) }

// WriteBlockingFraction is the fraction of task time spent blocked in writes.
func (p TaskProps) WriteBlockingFraction() float64 { return safeDiv(p.WriteLatency, p.Lifetime) }

// DataProps are lifecycle properties of a data vertex (§4.2).
type DataProps struct {
	// Size is the file size in bytes.
	Size int64
	// Lifetime is the first-open to last-close window in seconds.
	Lifetime float64
	// Instances counts merged data instances (for DFL-T grouping).
	Instances int
}

// FlowProps annotate one producer or consumer edge.
type FlowProps struct {
	// Ops is the number of I/O operations on this flow.
	Ops uint64
	// Volume is total (non-unique) bytes moved.
	Volume uint64
	// Footprint is unique bytes touched.
	Footprint uint64
	// Latency is total blocking time in seconds.
	Latency float64
	// MeanDistance is the mean consecutive access distance in bytes.
	MeanDistance float64
	// ZeroDistFrac is the fraction of consecutive accesses with distance 0.
	ZeroDistFrac float64
	// SmallDistFrac is the fraction with distance below one block.
	SmallDistFrac float64
	// Samples counts merged flows (template / multi-run aggregation).
	Samples int
}

// ReuseFactor is Volume/Footprint; values > 1 indicate data reuse.
func (p FlowProps) ReuseFactor() float64 {
	return safeDiv(float64(p.Volume), float64(p.Footprint))
}

// Rate is the effective flow rate Volume/Latency in B/s.
func (p FlowProps) Rate() float64 { return safeDiv(float64(p.Volume), p.Latency) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Vertex is one node of the DFL graph.
type Vertex struct {
	ID ID
	// Task holds properties when ID.Kind == TaskVertex.
	Task TaskProps
	// Data holds properties when ID.Kind == DataVertex.
	Data DataProps
}

// EdgeKind distinguishes the two flow relations of §3.
type EdgeKind uint8

const (
	// Consumer is data→task flow (reads).
	Consumer EdgeKind = iota
	// Producer is task→data flow (writes).
	Producer
)

func (k EdgeKind) String() string {
	if k == Consumer {
		return "consumer"
	}
	return "producer"
}

// Edge is one directed flow relation.
type Edge struct {
	Src, Dst ID
	Kind     EdgeKind
	Props    FlowProps
}

// Other returns the endpoint that is not id.
func (e *Edge) Other(id ID) ID {
	if e.Src == id {
		return e.Dst
	}
	return e.Src
}

// edgeKey names an edge by its endpoints for the first-match lookup table.
type edgeKey struct{ src, dst ID }

// Graph is a DFL graph: a property graph over task and data vertices. A
// DFL-DAG (one vertex per task instance) is acyclic by construction; a DFL-T
// (template) may contain cycles.
//
// Queries that need sorted snapshots or whole-graph aggregates (Vertices,
// Edges, TopoSort, TotalVolume, BestRate, Producers/Consumers, ...) are
// served from an indexed core (see Index) that mutations keep current via
// O(delta) copy-on-write snapshot derivation: AddEdge, new vertices,
// SetEdgeProps, and SetTaskProps/SetDataProps accumulate a pending delta, and
// the next query derives a new immutable snapshot from the previous one
// instead of rebuilding.
//
// Concurrency contract: snapshots obtained from Index() (and every slice the
// query methods return) stay valid and safe to read concurrently, forever —
// including while the graph keeps mutating and deriving newer snapshots.
// Mutation itself is single-writer: do not mutate concurrently with other
// mutations or with calls that may derive a snapshot.
type Graph struct {
	vertices map[ID]*Vertex
	out      map[ID][]*Edge
	in       map[ID][]*Edge
	edges    []*Edge

	// edgeAt maps endpoints to the first matching g.edges index (FindEdge
	// semantics). Built lazily on the first SetEdgeProps, then maintained.
	edgeAt map[edgeKey]int32

	pend  pending
	ep    *epoch
	force bool // full rebuild requested via Invalidate
	stats IndexStats

	mu    sync.Mutex // serializes snapshot derivation
	idx   atomic.Pointer[Index]
	dirty atomic.Bool
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[ID]*Vertex),
		out:      make(map[ID][]*Edge),
		in:       make(map[ID][]*Edge),
	}
}

// AddTask ensures a task vertex exists and returns it.
func (g *Graph) AddTask(name string) *Vertex { return g.ensure(TaskID(name)) }

// AddData ensures a data vertex exists and returns it.
func (g *Graph) AddData(name string) *Vertex { return g.ensure(DataID(name)) }

func (g *Graph) ensure(id ID) *Vertex {
	v := g.vertices[id]
	if v == nil {
		v = &Vertex{ID: id}
		if id.Kind == TaskVertex {
			v.Task.Instances = 1
		} else {
			v.Data.Instances = 1
		}
		g.vertices[id] = v
		g.pend.newVerts = append(g.pend.newVerts, v)
		if g.pend.newVertPos != nil {
			g.pend.newVertPos[id] = int32(len(g.pend.newVerts) - 1)
		}
		g.dirty.Store(true)
	}
	return v
}

// Vertex returns the vertex with the given ID, or nil.
func (g *Graph) Vertex(id ID) *Vertex { return g.vertices[id] }

// AddEdge inserts a flow edge after validating that it connects a task and a
// data vertex in the direction implied by its kind (§4.1's edge set E).
func (g *Graph) AddEdge(src, dst ID, kind EdgeKind, props FlowProps) (*Edge, error) {
	switch kind {
	case Consumer:
		if src.Kind != DataVertex || dst.Kind != TaskVertex {
			return nil, fmt.Errorf("dfl: consumer edge must be data→task, got %v→%v", src, dst)
		}
	case Producer:
		if src.Kind != TaskVertex || dst.Kind != DataVertex {
			return nil, fmt.Errorf("dfl: producer edge must be task→data, got %v→%v", src, dst)
		}
	default:
		return nil, fmt.Errorf("dfl: unknown edge kind %d", kind)
	}
	g.ensure(src)
	g.ensure(dst)
	e := &Edge{Src: src, Dst: dst, Kind: kind, Props: props}
	if e.Props.Samples == 0 {
		e.Props.Samples = 1
	}
	g.appendEdge(e)
	return e, nil
}

// appendEdge links e into the adjacency structures and records it in the
// pending delta (shared by AddEdge and AddUncheckedEdge).
func (g *Graph) appendEdge(e *Edge) {
	i := int32(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[e.Src] = append(g.out[e.Src], e)
	g.in[e.Dst] = append(g.in[e.Dst], e)
	if g.edgeAt != nil {
		k := edgeKey{e.Src, e.Dst}
		if _, ok := g.edgeAt[k]; !ok {
			g.edgeAt[k] = i
		}
	}
	g.pend.newEdges = append(g.pend.newEdges, i)
	g.dirty.Store(true)
}

// SetEdgeProps replaces the properties of the edge src→dst (the same edge
// FindEdge returns) and routes the change through the incremental index
// delta, so aggregates, fingerprint, and adjacency snapshots stay current
// without a rebuild. The replacement is copy-on-write: previously obtained
// snapshots keep reading the old edge value. Returns false when no such edge
// exists.
func (g *Graph) SetEdgeProps(src, dst ID, props FlowProps) bool {
	i := g.edgeIndex(src, dst)
	if i < 0 {
		return false
	}
	old := g.edges[i]
	if props.Samples == 0 {
		props.Samples = 1
	}
	ne := &Edge{Src: old.Src, Dst: old.Dst, Kind: old.Kind, Props: props}
	g.edges[i] = ne
	swapEdge(g.out[src], old, ne)
	swapEdge(g.in[dst], old, ne)
	if g.pend.editOld == nil {
		g.pend.editOld = make(map[int32]*Edge)
	}
	if _, ok := g.pend.editOld[i]; !ok {
		g.pend.editOld[i] = old
	}
	g.dirty.Store(true)
	return true
}

// SetTaskProps replaces the properties of the task vertex with the given
// name, routing the change through the incremental index delta (the vertex
// analogue of SetEdgeProps). The replacement is copy-on-write: previously
// obtained snapshots keep reading the old vertex value, including its term in
// the content fingerprint. Returns false when no such task exists.
func (g *Graph) SetTaskProps(name string, props TaskProps) bool {
	if props.Instances == 0 {
		props.Instances = 1
	}
	id := TaskID(name)
	old := g.vertices[id]
	if old == nil {
		return false
	}
	return g.replaceVertex(id, &Vertex{ID: id, Task: props})
}

// SetDataProps replaces the properties of the data vertex with the given
// name through the incremental index delta (copy-on-write, like
// SetTaskProps). Returns false when no such data vertex exists.
func (g *Graph) SetDataProps(name string, props DataProps) bool {
	if props.Instances == 0 {
		props.Instances = 1
	}
	id := DataID(name)
	old := g.vertices[id]
	if old == nil {
		return false
	}
	return g.replaceVertex(id, &Vertex{ID: id, Data: props})
}

// replaceVertex swaps the stored vertex pointer for id and records the delta:
// vertices added since the last derivation are swapped in the pending list
// (their final value surfaces everywhere), pre-existing ones record the
// first-seen old pointer for the copy-on-write edit map.
func (g *Graph) replaceVertex(id ID, nv *Vertex) bool {
	old := g.vertices[id]
	g.vertices[id] = nv
	if g.pend.newVertPos == nil && len(g.pend.newVerts) > 0 {
		g.pend.newVertPos = make(map[ID]int32, len(g.pend.newVerts))
		for j, v := range g.pend.newVerts {
			g.pend.newVertPos[v.ID] = int32(j)
		}
	}
	if j, ok := g.pend.newVertPos[id]; ok {
		g.pend.newVerts[j] = nv
		g.dirty.Store(true)
		return true
	}
	if g.pend.editVertOld == nil {
		g.pend.editVertOld = make(map[ID]*Vertex)
	}
	if _, ok := g.pend.editVertOld[id]; !ok {
		g.pend.editVertOld[id] = old
	}
	g.dirty.Store(true)
	return true
}

// edgeIndex returns the first g.edges index of src→dst, or -1, building the
// lookup table on first use.
func (g *Graph) edgeIndex(src, dst ID) int32 {
	if g.edgeAt == nil {
		g.edgeAt = make(map[edgeKey]int32, len(g.edges))
		for i, e := range g.edges {
			k := edgeKey{e.Src, e.Dst}
			if _, ok := g.edgeAt[k]; !ok {
				g.edgeAt[k] = int32(i)
			}
		}
	}
	if i, ok := g.edgeAt[edgeKey{src, dst}]; ok {
		return i
	}
	return -1
}

// FindEdge returns the edge src→dst, or nil. Mutating properties through the
// returned pointer bypasses the index delta — prefer SetEdgeProps; if you do
// mutate in place after queries have run, call Invalidate.
func (g *Graph) FindEdge(src, dst ID) *Edge {
	for _, e := range g.out[src] {
		if e.Dst == dst {
			return e
		}
	}
	return nil
}

// Out returns the outgoing edges of id.
func (g *Graph) Out(id ID) []*Edge { return g.out[id] }

// In returns the incoming edges of id.
func (g *Graph) In(id ID) []*Edge { return g.in[id] }

// OutDegree and InDegree report adjacency sizes.
func (g *Graph) OutDegree(id ID) int { return len(g.out[id]) }

// InDegree reports the number of incoming edges.
func (g *Graph) InDegree(id ID) int { return len(g.in[id]) }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertices returns all vertices sorted by (kind, name) for determinism. The
// slice is a shared snapshot from the indexed core — do not modify.
func (g *Graph) Vertices() []*Vertex {
	vs, _ := g.Index().canonVerts()
	return vs
}

// Tasks returns all task vertices sorted by name (shared snapshot — do not
// modify).
func (g *Graph) Tasks() []*Vertex {
	vs, nt := g.Index().canonVerts()
	return vs[:nt]
}

// DataFiles returns all data vertices sorted by name (shared snapshot — do
// not modify).
func (g *Graph) DataFiles() []*Vertex {
	vs, nt := g.Index().canonVerts()
	return vs[nt:]
}

// Edges returns all edges sorted by (src, dst) (shared snapshot — do not
// modify).
func (g *Graph) Edges() []*Edge { return g.Index().canonEdges() }

func less(a, b ID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}

// TopoSort returns the vertices in a topological order, or an error if the
// graph has a cycle (e.g. a DFL-T with merged loop instances). The order is
// the deterministic Kahn order (sorted zero-indegree seeds, sorted freed
// successors), served from the indexed core (shared snapshot — do not
// modify).
func (g *Graph) TopoSort() ([]ID, error) {
	ix := g.Index()
	return ix.topoIDs, ix.topoErr
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// UseConcurrency returns the number of distinct consumer tasks of a data
// vertex — the §4.2 "use concurrency" access pattern.
func (g *Graph) UseConcurrency(data ID) int {
	if data.Kind != DataVertex {
		return 0
	}
	return len(g.Consumers(data))
}

// Producers returns the distinct producer tasks of a data vertex, sorted
// (shared snapshot — do not modify).
func (g *Graph) Producers(data ID) []ID {
	ix := g.Index()
	if p := ix.Pos(data); p >= 0 && data.Kind == DataVertex {
		return ix.producersFor(p)
	}
	return g.neighborTasks(g.in[data])
}

// Consumers returns the distinct consumer tasks of a data vertex, sorted
// (shared snapshot — do not modify).
func (g *Graph) Consumers(data ID) []ID {
	ix := g.Index()
	if p := ix.Pos(data); p >= 0 && data.Kind == DataVertex {
		return ix.consumersFor(p)
	}
	return g.neighborTasks(g.out[data])
}

func (g *Graph) neighborTasks(edges []*Edge) []ID {
	seen := make(map[ID]struct{})
	for _, e := range edges {
		if e.Src.Kind == TaskVertex {
			seen[e.Src] = struct{}{}
		}
		if e.Dst.Kind == TaskVertex {
			seen[e.Dst] = struct{}{}
		}
	}
	out := make([]ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// TotalVolume sums edge volumes over the whole graph (cached per-graph
// aggregate).
func (g *Graph) TotalVolume() uint64 { return g.Index().totalVolume }

// BestRate returns the maximum effective flow rate (Volume/Latency, B/s)
// over all edges — the cached per-graph aggregate GCPA's rate-deficit weight
// normalizes against. Zero when no edge has a measurable rate.
func (g *Graph) BestRate() float64 { return g.Index().bestRate }
