package dfl

import (
	"math"
	"strings"
	"testing"
)

func rules(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Rule
	}
	return out
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestValidateCleanGraph(t *testing.T) {
	g := New()
	mustEdge(g, TaskID("p"), DataID("d"), Producer, FlowProps{Volume: 100, Footprint: 100})
	mustEdge(g, DataID("d"), TaskID("c"), Consumer, FlowProps{Volume: 100, Footprint: 100})
	if vs := g.Validate(); len(vs) != 0 {
		t.Fatalf("clean graph reported %v", rules(vs))
	}
}

func TestValidateCycle(t *testing.T) {
	g := New()
	mustEdge(g, TaskID("t"), DataID("d"), Producer, FlowProps{Volume: 1, Footprint: 1})
	mustEdge(g, DataID("d"), TaskID("t"), Consumer, FlowProps{Volume: 1, Footprint: 1})
	vs := Errors(g.Validate())
	if !hasRule(vs, "cycle") {
		t.Fatalf("cycle not reported: %v", rules(vs))
	}
	// The message names the stuck vertices.
	for _, v := range vs {
		if v.Rule == "cycle" && !strings.Contains(v.Subject, "task:t") {
			t.Errorf("cycle subject %q does not name the cycle members", v.Subject)
		}
	}
}

func TestValidateBipartite(t *testing.T) {
	g := New()
	g.AddUncheckedEdge(TaskID("a"), TaskID("b"), Producer, FlowProps{})
	g.AddUncheckedEdge(DataID("x"), DataID("y"), Consumer, FlowProps{})
	g.AddUncheckedEdge(TaskID("a"), DataID("x"), EdgeKind(99), FlowProps{})
	vs := Errors(g.Validate())
	n := 0
	for _, v := range vs {
		if v.Rule == "bipartite" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("want 3 bipartite errors, got %d: %v", n, vs)
	}
}

func TestValidateOrderingAndInitialInputs(t *testing.T) {
	// Consumed but never produced, no initial size: error.
	g := New()
	mustEdge(g, DataID("in"), TaskID("c"), Consumer, FlowProps{Volume: 10, Footprint: 10})
	if vs := Errors(g.Validate()); !hasRule(vs, "ordering") {
		t.Fatalf("unproduced consumed data accepted: %v", rules(vs))
	}
	// The same shape with a declared initial size is a legitimate input —
	// but the footprint must fit it.
	g.Vertex(DataID("in")).Data.Size = 10
	if vs := Errors(g.Validate()); len(vs) != 0 {
		t.Fatalf("initial input rejected: %v", vs)
	}
}

func TestValidateOrphanAndUnconsumedAreWarnings(t *testing.T) {
	g := New()
	g.AddData("orphan")
	mustEdge(g, TaskID("p"), DataID("out"), Producer, FlowProps{Volume: 5, Footprint: 5})
	vs := g.Validate()
	if !hasRule(vs, "orphan") || !hasRule(vs, "unconsumed") {
		t.Fatalf("missing warnings: %v", rules(vs))
	}
	if len(Errors(vs)) != 0 {
		t.Fatalf("warnings misclassified as errors: %v", Errors(vs))
	}
}

func TestValidateConservation(t *testing.T) {
	// Footprint larger than volume is impossible by definition.
	g := New()
	mustEdge(g, TaskID("p"), DataID("d"), Producer, FlowProps{Volume: 100, Footprint: 100})
	mustEdge(g, DataID("d"), TaskID("c"), Consumer, FlowProps{Volume: 10, Footprint: 20})
	if vs := Errors(g.Validate()); !hasRule(vs, "conservation") {
		t.Fatalf("footprint > volume accepted: %v", rules(vs))
	}

	// Footprint beyond the produced bytes breaches conservation.
	g2 := New()
	mustEdge(g2, TaskID("p"), DataID("d"), Producer, FlowProps{Volume: 100, Footprint: 100})
	mustEdge(g2, DataID("d"), TaskID("c"), Consumer, FlowProps{Volume: 300, Footprint: 300})
	if vs := Errors(g2.Validate()); !hasRule(vs, "conservation") {
		t.Fatalf("footprint > capacity accepted: %v", rules(vs))
	}

	// Template edges carry summed footprints over Samples merged instances;
	// the invariant holds per sample.
	g3 := New()
	mustEdge(g3, TaskID("p"), DataID("d"), Producer, FlowProps{Volume: 300, Footprint: 300, Samples: 3})
	g3.Vertex(DataID("d")).Data.Size = 100
	mustEdge(g3, DataID("d"), TaskID("c"), Consumer, FlowProps{Volume: 300, Footprint: 300, Samples: 3})
	if vs := Errors(g3.Validate()); len(vs) != 0 {
		t.Fatalf("per-sample-clean template rejected: %v", vs)
	}
}

func TestValidateProps(t *testing.T) {
	g := New()
	mustEdge(g, TaskID("t"), DataID("d"), Producer, FlowProps{Volume: 1, Footprint: 1})
	mustEdge(g, DataID("d"), TaskID("c"), Consumer, FlowProps{Volume: 1, Footprint: 1})
	g.Vertex(TaskID("t")).Task.Instances = 0
	g.Vertex(TaskID("t")).Task.Lifetime = math.NaN()
	g.Vertex(DataID("d")).Data.Size = -4
	g.Edges()[0].Props.Samples = 0
	g.Edges()[0].Props.Latency = -1
	vs := Errors(g.Validate())
	n := 0
	for _, v := range vs {
		if v.Rule == "props" {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("want 5 props errors, got %d: %v", n, vs)
	}
}

func TestValidateSortsErrorsFirst(t *testing.T) {
	g := New()
	g.AddData("orphan") // warning
	g.AddUncheckedEdge(TaskID("a"), TaskID("b"), Producer, FlowProps{})
	vs := g.Validate()
	if len(vs) < 2 {
		t.Fatalf("want at least 2 violations, got %v", vs)
	}
	if vs[0].Severity != Error {
		t.Fatalf("errors not sorted first: %v", vs)
	}
	if s := vs[0].String(); !strings.HasPrefix(s, "error: ") {
		t.Fatalf("String() = %q", s)
	}
}

func TestAddUncheckedEdgeDefaults(t *testing.T) {
	g := New()
	e := g.AddUncheckedEdge(TaskID("a"), DataID("d"), Producer, FlowProps{})
	if e.Props.Samples != 1 {
		t.Fatalf("Samples default = %d, want 1", e.Props.Samples)
	}
	if g.FindEdge(TaskID("a"), DataID("d")) != e {
		t.Fatal("unchecked edge not indexed")
	}
}
