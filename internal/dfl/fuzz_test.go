package dfl

import (
	"fmt"
	"testing"
)

// FuzzIndexMutations drives byte-decoded mutation programs against the graph
// and asserts, after every op, that the incremental snapshot path is
// indistinguishable from a naive full rebuild on every public accessor —
// including the exact cycle error when an op ties the frontier into a loop.
func FuzzIndexMutations(f *testing.F) {
	// Seeds: streaming growth, edits, an anchored mid-stream cycle, the
	// Invalidate escape hatch, and an unanchored cross edge (compaction).
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 3, 0, 3, 12, 3, 24, 0})
	f.Add([]byte{0, 0, 2, 0, 0, 2, 1, 1})
	f.Add([]byte{0, 4, 7, 0, 4, 9, 0, 4})
	f.Add([]byte{0, 0, 1, 5, 10, 0, 1, 5, 3})
	f.Add([]byte{0, 0, 0, 5, 1, 22, 0, 5, 7, 0})
	f.Add([]byte{0, 0, 6, 1, 3, 6, 0, 9, 6, 2, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		g := New()
		g.AddTask("t0")
		next := func(i *int) byte {
			if *i >= len(data) {
				return 0
			}
			b := data[*i]
			*i++
			return b
		}
		for i, step := 0, 0; i < len(data) && g.NumVertices() < 120; step++ {
			switch op := next(&i) % 7; op {
			case 0:
				// Frontier growth off the topological tail (fast path shape).
				tail, err := g.TopoSort()
				if err != nil || len(tail) == 0 {
					g.AddData(fmt.Sprintf("iso%d", step))
					break
				}
				a := tail[len(tail)-1]
				if a.Kind == TaskVertex {
					d := g.AddData(fmt.Sprintf("d%d", step))
					_, _ = g.AddEdge(a, d.ID, Producer, FlowProps{Volume: uint64(1 + next(&i)), Latency: 1})
				} else {
					tk := g.AddTask(fmt.Sprintf("t%d", step))
					_, _ = g.AddEdge(a, tk.ID, Consumer, FlowProps{Volume: uint64(1 + next(&i)), Latency: 1})
				}
			case 1:
				// Cross edge between existing vertices: may point into an old
				// vertex (compaction) or even close a cycle.
				vs, _ := g.Index().canonVerts()
				if len(vs) < 2 {
					break
				}
				a := vs[int(next(&i))%len(vs)].ID
				b := vs[int(next(&i))%len(vs)].ID
				if a.Kind == b.Kind || g.FindEdge(a, b) != nil {
					break
				}
				kind := Producer
				if a.Kind == DataVertex {
					kind = Consumer
				}
				_, _ = g.AddEdge(a, b, kind, FlowProps{Volume: uint64(1 + next(&i)), Latency: 2})
			case 2:
				// Anchored loop: new task+data pair where the data feeds the
				// task back — unorderable, but structurally incremental.
				tail, err := g.TopoSort()
				if err != nil || len(tail) == 0 || tail[len(tail)-1].Kind != DataVertex {
					g.AddTask(fmt.Sprintf("tx%d", step))
					break
				}
				a := tail[len(tail)-1]
				tk := g.AddTask(fmt.Sprintf("lt%d", step))
				d := g.AddData(fmt.Sprintf("ld%d", step))
				_, _ = g.AddEdge(a, tk.ID, Consumer, FlowProps{Volume: 1, Latency: 1})
				_, _ = g.AddEdge(tk.ID, d.ID, Producer, FlowProps{Volume: 1, Latency: 1})
				_, _ = g.AddEdge(d.ID, tk.ID, Consumer, FlowProps{Volume: 1, Latency: 1})
			case 3:
				// Tracked property edit.
				es := g.Edges()
				if len(es) == 0 {
					break
				}
				e := es[int(next(&i))%len(es)]
				p := e.Props
				p.Volume = uint64(1 + next(&i))
				p.Latency = float64(1+next(&i)%7) / 2
				g.SetEdgeProps(e.Src, e.Dst, p)
			case 4:
				// Untracked in-place mutation + Invalidate escape hatch.
				es := g.Edges()
				if len(es) == 0 {
					break
				}
				e := g.FindEdge(es[int(next(&i))%len(es)].Src, es[int(next(&i))%len(es)].Dst)
				if e != nil {
					e.Props.Ops++
					g.Invalidate()
				}
			case 5:
				// Fresh unanchored vertex.
				g.AddData(fmt.Sprintf("iso%d", step))
			case 6:
				// Tracked vertex property edit (copy-on-write).
				vs, _ := g.Index().canonVerts()
				if len(vs) == 0 {
					break
				}
				v := vs[int(next(&i))%len(vs)]
				if v.ID.Kind == TaskVertex {
					p := v.Task
					p.Lifetime = float64(1+next(&i)%9) / 2
					p.WriteOps += uint64(next(&i))
					g.SetTaskProps(v.ID.Name, p)
				} else {
					p := v.Data
					p.Size = int64(next(&i)) * 16
					g.SetDataProps(v.ID.Name, p)
				}
			}
			assertSnapshotEquivalent(t, g)
		}
	})
}
