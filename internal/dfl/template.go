package dfl

import (
	"fmt"
	"strings"

	"datalife/internal/stats"
)

// GroupFunc maps an instance vertex name to its template name. Returning the
// input unchanged keeps the vertex un-aggregated.
type GroupFunc func(kind VertexKind, name string) string

// InstanceSuffixGroup is the default grouping rule: task names of the form
// "name#i" (the convention used by the workflow generators for parallel
// instances of the same task, e.g. control-loop iterations) collapse to
// "name". Data names are untouched.
func InstanceSuffixGroup(kind VertexKind, name string) string {
	if kind != TaskVertex {
		return name
	}
	if i := strings.LastIndexByte(name, '#'); i > 0 {
		return name[:i]
	}
	return name
}

// Template aggregates instances of the same vertex to form a lifecycle
// template, DFL-T (§4.1). Vertex properties are summed (volumes, ops,
// latency) or averaged (lifetimes) over instances; parallel edges between
// the same template endpoints are merged by summing volumes and averaging
// pattern statistics. The result may contain cycles (e.g. control loops).
func Template(g *Graph, group GroupFunc) *Graph {
	if group == nil {
		group = InstanceSuffixGroup
	}
	t := New()

	// Map each instance ID to its template ID and fold vertex properties.
	rename := make(map[ID]ID, g.NumVertices())
	counts := make(map[ID]int)
	for _, v := range g.Vertices() {
		tid := ID{v.ID.Kind, group(v.ID.Kind, v.ID.Name)}
		rename[v.ID] = tid
		tv := t.ensure(tid)
		counts[tid]++
		n := counts[tid]
		switch v.ID.Kind {
		case TaskVertex:
			tv.Task.Instances = n
			// Running average for lifetime; sums for volumes and ops.
			tv.Task.Lifetime += (v.Task.Lifetime - tv.Task.Lifetime) / float64(n)
			tv.Task.ReadOps += v.Task.ReadOps
			tv.Task.WriteOps += v.Task.WriteOps
			tv.Task.InVolume += v.Task.InVolume
			tv.Task.OutVolume += v.Task.OutVolume
			tv.Task.ReadLatency += v.Task.ReadLatency
			tv.Task.WriteLatency += v.Task.WriteLatency
		case DataVertex:
			tv.Data.Instances = n
			tv.Data.Lifetime += (v.Data.Lifetime - tv.Data.Lifetime) / float64(n)
			if v.Data.Size > tv.Data.Size {
				tv.Data.Size = v.Data.Size
			}
		}
	}

	// Merge edges between the same template endpoints.
	for _, e := range g.Edges() {
		src, dst := rename[e.Src], rename[e.Dst]
		if cur := t.FindEdge(src, dst); cur != nil {
			t.SetEdgeProps(src, dst, mergeFlowProps(cur.Props, e.Props))
			continue
		}
		if _, err := t.AddEdge(src, dst, e.Kind, e.Props); err != nil {
			// Grouping cannot change vertex kinds, so directions stay valid.
			panic(err)
		}
	}
	return t
}

// mergeFlowProps combines two flows: counters add, pattern statistics average
// weighted by sample count.
func mergeFlowProps(a, b FlowProps) FlowProps {
	wa, wb := float64(a.Samples), float64(b.Samples)
	if wa == 0 {
		wa = 1
	}
	if wb == 0 {
		wb = 1
	}
	w := wa + wb
	return FlowProps{
		Ops:           a.Ops + b.Ops,
		Volume:        a.Volume + b.Volume,
		Footprint:     a.Footprint + b.Footprint,
		Latency:       a.Latency + b.Latency,
		MeanDistance:  (a.MeanDistance*wa + b.MeanDistance*wb) / w,
		ZeroDistFrac:  (a.ZeroDistFrac*wa + b.ZeroDistFrac*wb) / w,
		SmallDistFrac: (a.SmallDistFrac*wa + b.SmallDistFrac*wb) / w,
		Samples:       a.Samples + b.Samples,
	}
}

// AverageRuns generalizes a DFL graph over several executions (§2): all runs
// must share the same structure (same vertex and edge sets); numeric
// properties are averaged across runs. It returns an error on structural
// mismatch, which per §2 indicates the executions did not use the same input.
func AverageRuns(runs []*Graph) (*Graph, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("dfl: no runs to average")
	}
	base := runs[0]
	avg := New()
	for _, v := range base.Vertices() {
		nv := avg.ensure(v.ID)
		*nv = *v
	}
	for _, e := range base.Edges() {
		if _, err := avg.AddEdge(e.Src, e.Dst, e.Kind, e.Props); err != nil {
			return nil, err
		}
	}
	for ri, run := range runs[1:] {
		if run.NumVertices() != base.NumVertices() || run.NumEdges() != base.NumEdges() {
			return nil, fmt.Errorf("dfl: run %d structure differs (%dV/%dE vs %dV/%dE)",
				ri+1, run.NumVertices(), run.NumEdges(), base.NumVertices(), base.NumEdges())
		}
		for _, v := range run.Vertices() {
			av := avg.Vertex(v.ID)
			if av == nil {
				return nil, fmt.Errorf("dfl: run %d has extra vertex %v", ri+1, v.ID)
			}
			n := float64(ri + 2) // runs folded so far including this one
			switch v.ID.Kind {
			case TaskVertex:
				av.Task.Lifetime += (v.Task.Lifetime - av.Task.Lifetime) / n
				av.Task.ReadLatency += (v.Task.ReadLatency - av.Task.ReadLatency) / n
				av.Task.WriteLatency += (v.Task.WriteLatency - av.Task.WriteLatency) / n
				av.Task.ReadOps = avgU64(av.Task.ReadOps, v.Task.ReadOps, n)
				av.Task.WriteOps = avgU64(av.Task.WriteOps, v.Task.WriteOps, n)
				av.Task.InVolume = avgU64(av.Task.InVolume, v.Task.InVolume, n)
				av.Task.OutVolume = avgU64(av.Task.OutVolume, v.Task.OutVolume, n)
			case DataVertex:
				av.Data.Lifetime += (v.Data.Lifetime - av.Data.Lifetime) / n
				if v.Data.Size > av.Data.Size {
					av.Data.Size = v.Data.Size
				}
			}
		}
		for _, e := range run.Edges() {
			ae := avg.FindEdge(e.Src, e.Dst)
			if ae == nil {
				return nil, fmt.Errorf("dfl: run %d has extra edge %v→%v", ri+1, e.Src, e.Dst)
			}
			n := float64(ri + 2)
			p := ae.Props
			p.Ops = avgU64(p.Ops, e.Props.Ops, n)
			p.Volume = avgU64(p.Volume, e.Props.Volume, n)
			p.Footprint = avgU64(p.Footprint, e.Props.Footprint, n)
			p.Latency += (e.Props.Latency - p.Latency) / n
			p.MeanDistance += (e.Props.MeanDistance - p.MeanDistance) / n
			p.ZeroDistFrac += (e.Props.ZeroDistFrac - p.ZeroDistFrac) / n
			p.SmallDistFrac += (e.Props.SmallDistFrac - p.SmallDistFrac) / n
			p.Samples++
			avg.SetEdgeProps(e.Src, e.Dst, p)
		}
	}
	return avg, nil
}

// avgU64 folds sample x into a running average cur over n samples.
func avgU64(cur, x uint64, n float64) uint64 {
	return uint64(float64(cur) + (float64(x)-float64(cur))/n)
}

// EdgeMetric extracts a numeric property from an edge for distribution
// collection.
type EdgeMetric func(*Edge) float64

// EdgeKey names an edge across runs.
type EdgeKey struct {
	Src, Dst ID
}

// EdgeDistributions collects, for each edge present in the runs, the sample
// distribution of a property across runs — the paper's alternative to
// averaging when generalizing graphs over several executions ("property
// values are either averaged or represented as histograms", §2). Runs may
// differ structurally; an edge's distribution holds one sample per run that
// contains it.
func EdgeDistributions(runs []*Graph, metric EdgeMetric) map[EdgeKey]stats.Summary {
	if metric == nil {
		metric = func(e *Edge) float64 { return float64(e.Props.Volume) }
	}
	samples := make(map[EdgeKey][]float64)
	for _, g := range runs {
		for _, e := range g.Edges() {
			k := EdgeKey{e.Src, e.Dst}
			samples[k] = append(samples[k], metric(e))
		}
	}
	out := make(map[EdgeKey]stats.Summary, len(samples))
	for k, xs := range samples {
		out[k] = stats.Summarize(xs)
	}
	return out
}
