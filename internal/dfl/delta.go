package dfl

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// Compaction thresholds: the incremental fast path bails out to a full
// rebuild when the overlay would outgrow these bounds, keeping per-snapshot
// clone work O(1) and overlay reads cache-friendly. The extras bound is
// geometric (proportional to the base), so a pure streaming build compacts
// O(log n) times and the total compaction work stays O(n).
const (
	maxEditedEntries = 256
	maxTouchedSlots  = 256
	maxTouchedEdges  = 4096
	minExtraCap      = 64
)

// pending is the mutation delta accumulated by AddEdge/ensure/SetEdgeProps/
// SetTaskProps/SetDataProps since the last snapshot derivation.
type pending struct {
	newVerts []*Vertex
	// newVertPos maps vertex IDs to their newVerts index. Built lazily on the
	// first property edit since the last derivation (so pure streaming builds
	// never pay for it), then maintained by ensure.
	newVertPos map[ID]int32
	// newEdges holds indices into g.edges (not pointers): an edge appended
	// and then edited within the same delta must surface its final pointer.
	newEdges []int32
	// editOld maps a g.edges index to the pointer the previous snapshot saw
	// (recorded on the first SetEdgeProps for that edge since the last
	// derivation).
	editOld map[int32]*Edge
	// editVertOld maps a vertex ID to the pointer the previous snapshot saw
	// (first SetTaskProps/SetDataProps since the last derivation). Vertices
	// added within the same delta are swapped in newVerts instead and never
	// appear here.
	editVertOld map[ID]*Vertex
}

func (p *pending) empty() bool {
	return len(p.newVerts) == 0 && len(p.newEdges) == 0 &&
		len(p.editOld) == 0 && len(p.editVertOld) == 0
}

// epoch is the shared overlay state between two compactions. Its arrays are
// append-only and extended only during snapshot derivation (under g.mu);
// snapshots capture prefix headers, so concurrent readers of older snapshots
// never observe later appends.
type epoch struct {
	extraIDs   []ID
	extraVerts []*Vertex
	extraAdj   []*slotAdj
	extraEdges []*Edge
	posExtra   *sync.Map
	// topoSlots/topoIDs extend the compaction-time topological order by
	// exact suffixes; valid only while every derivation kept topoErr nil.
	topoSlots []int32
	topoIDs   []ID
	// origPtr records, per edited g.edges index, the edge pointer that is
	// physically stored in the epoch's shared arrays (the compaction-time or
	// first-append pointer), so cumulative edit maps key correctly across
	// repeated edits.
	origPtr map[int32]*Edge
	// origVertPtr is the vertex analogue of origPtr: per edited vertex ID,
	// the pointer physically stored in the epoch's shared verts/extraVerts
	// arrays, keying the cumulative editedVerts map across repeated edits.
	origVertPtr map[ID]*Vertex
}

// adjHalf is one direction of an overlay slot's adjacency. The three slices
// grow in lockstep; seqs holds each edge's epoch sequence number (its index
// in epoch.extraEdges), ascending, so a snapshot sees exactly the prefix
// with seq < its seqMark.
type adjHalf struct {
	edges []*Edge
	peers []int32
	seqs  []int32
}

// visible returns the length of the prefix visible at mark.
func (h *adjHalf) visible(mark int32) int {
	lo, hi := 0, len(h.seqs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.seqs[mid] < mark {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// slotAdj is the shared adjacency of one overlay slot. Appends build a new
// header and publish it atomically, so readers holding older snapshots (and
// thus smaller seqMarks) race-freely read the prefix they can see.
type slotAdj struct {
	out, in atomic.Pointer[adjHalf]
}

func appendHalf(p *atomic.Pointer[adjHalf], e *Edge, peer, seq int32) {
	h := p.Load()
	nh := &adjHalf{}
	if h != nil {
		nh.edges = append(h.edges, e)
		nh.peers = append(h.peers, peer)
		nh.seqs = append(h.seqs, seq)
	} else {
		nh.edges = []*Edge{e}
		nh.peers = []int32{peer}
		nh.seqs = []int32{seq}
	}
	p.Store(nh)
}

// slotOverlay is a fully-materialized adjacency override for one slot:
// base slots that gained edges and any slot with an edited edge. Entries are
// immutable once their creating derivation publishes; later derivations
// clone before modifying.
type slotOverlay struct {
	outE []*Edge
	outD []int32
	inE  []*Edge
	inS  []int32
}

// IndexStats counts snapshot derivations since the graph was created —
// useful for asserting that a workload actually stays on the O(delta) path.
type IndexStats struct {
	// Derivations counts snapshots built (fast + compactions).
	Derivations int
	// Fast counts O(delta) derivations.
	Fast int
	// Compactions counts full rebuilds (including Invalidate).
	Compactions int
}

// IndexStats returns the derivation counters. Not synchronized with
// concurrent queries; call from the mutating goroutine.
func (g *Graph) IndexStats() IndexStats { return g.stats }

// derive produces the next snapshot from the pending delta. Called under
// g.mu with g.dirty set.
func (g *Graph) derive() *Index {
	prev := g.idx.Load()
	force := g.force
	g.force = false
	pend := g.pend
	g.pend = pending{}

	if prev != nil && !force && pend.empty() {
		return prev
	}
	g.stats.Derivations++
	if force || prev == nil || g.ep == nil {
		// Full rebuild with no carried sums: Invalidate signals untracked
		// in-place property mutations, so previous sums may be stale.
		return g.compact(nil, pending{})
	}
	if ix := g.fastDerive(prev, pend); ix != nil {
		g.stats.Fast++
		return ix
	}
	return g.compact(prev, pend)
}

// compact rebuilds the index from scratch and starts a fresh epoch. When the
// previous snapshot's fingerprint sums are available (and the delta fully
// describes the change — not the Invalidate path), they are carried forward
// in O(delta) so the new snapshot's fingerprint stays cheap.
func (g *Graph) compact(prev *Index, pend pending) *Index {
	g.stats.Compactions++
	ix := buildIndex(g)
	if prev != nil && prev.fpReady.Load() {
		vs, es := prev.vertSum, prev.edgeSum
		for _, v := range pend.newVerts {
			vs += vertexHash(v)
		}
		for _, ei := range pend.newEdges {
			es += edgeHash(g.edges[ei])
		}
		for _, i := range sortedEditKeys(pend.editOld) {
			if int(i) >= prev.mEdges {
				continue // added this delta; counted above at its final value
			}
			es += edgeHash(g.edges[i]) - edgeHash(pend.editOld[i])
		}
		for _, id := range sortedVertEditKeys(pend.editVertOld) {
			// Vertices added this delta never appear here: their pending
			// entry is swapped in place and counted above at its final value.
			vs += vertexHash(g.vertices[id]) - vertexHash(pend.editVertOld[id])
		}
		ix.vertSum, ix.edgeSum = vs, es
		ix.fp = combineFingerprint(ix.n, ix.mEdges, vs, es)
		ix.fpReady.Store(true)
	}
	g.ep = &epoch{
		posExtra:  &sync.Map{},
		topoSlots: ix.topo,
		topoIDs:   ix.topoIDs,
	}
	return ix
}

// fastDerive attempts the O(delta) snapshot derivation. It returns nil when
// the delta is not representable incrementally (thresholds exceeded, edges
// into pre-existing vertices, unanchored new vertices, a lowered best-rate
// edge, or a poisoned topological order), in which case the caller compacts.
//
// The topological fast path relies on the anchored-suffix property: when
// every pending new edge points into a new vertex and every new vertex is
// reachable from the previous order's final vertex (the anchor) through
// new edges — or carries a direct anchor edge — the deterministic Kahn order
// of the grown graph is exactly the previous order followed by a suffix of
// the new vertices, which a mini-Kahn over the new subgraph reproduces
// byte-identically (freed batches are all-new and ID-sorted, matching the
// canonical dense sort of a full rebuild).
func (g *Graph) fastDerive(prev *Index, pend pending) *Index {
	ep := g.ep
	structural := len(pend.newVerts) > 0 || len(pend.newEdges) > 0
	if structural && prev.topoErr != nil {
		return nil
	}
	baseN := prev.baseN
	prevN := int32(prev.n)
	k := len(pend.newVerts)

	if prev.n-int(baseN)+k > max(minExtraCap, int(baseN)) {
		return nil
	}
	if len(prev.edited)+len(pend.editOld)+
		len(prev.editedVerts)+len(pend.editVertOld) > maxEditedEntries {
		return nil
	}

	// Classify edits: only edges that existed in the previous snapshot count;
	// edges added this delta already surface their final pointer everywhere.
	type editRec struct {
		i    int32
		o, c *Edge
	}
	var edits []editRec
	for _, i := range sortedEditKeys(pend.editOld) {
		if int(i) >= prev.mEdges {
			continue
		}
		o := pend.editOld[i]
		c := g.edges[i]
		if c == o {
			continue
		}
		// Lowering an edge that carried the best rate invalidates the cached
		// max; recompute via compaction.
		if or := o.Props.Rate(); or >= prev.bestRate && c.Props.Rate() < or {
			return nil
		}
		edits = append(edits, editRec{i, o, c})
	}

	// Classify vertex property edits. They are non-structural: adjacency,
	// topological order, and edge aggregates reference vertices by ID, so a
	// copy-on-write pointer replacement is the whole change.
	type vertEditRec struct {
		id   ID
		o, c *Vertex
	}
	var vertEdits []vertEditRec
	for _, id := range sortedVertEditKeys(pend.editVertOld) {
		o := pend.editVertOld[id]
		c := g.vertices[id]
		if c == o {
			continue
		}
		vertEdits = append(vertEdits, vertEditRec{id, o, c})
	}

	var newLocal map[ID]int32
	if k > 0 {
		newLocal = make(map[ID]int32, k)
		for j, v := range pend.newVerts {
			newLocal[v.ID] = int32(j)
		}
	}
	slotOf := func(id ID) int32 {
		if p, ok := prev.pos[id]; ok {
			return p
		}
		if v, ok := ep.posExtra.Load(id); ok {
			return v.(int32)
		}
		return prevN + newLocal[id]
	}

	// Topological feasibility (structural deltas only).
	var (
		newIndeg []int32
		newOut   [][]int32
	)
	if structural {
		if prevN == 0 {
			return nil
		}
		anchor := prev.topoIDs[prevN-1]
		anchorSeed := make([]bool, k)
		newIndeg = make([]int32, k)
		newOut = make([][]int32, k)
		for _, ei := range pend.newEdges {
			e := g.edges[ei]
			dj, ok := newLocal[e.Dst]
			if !ok {
				return nil // edge into a pre-existing vertex: old indegrees change
			}
			if sj, ok := newLocal[e.Src]; ok {
				newOut[sj] = append(newOut[sj], dj)
				newIndeg[dj]++
			} else if e.Src == anchor {
				anchorSeed[dj] = true
			}
		}
		anchored := make([]bool, k)
		var stack []int32
		for j, s := range anchorSeed {
			if s {
				anchored[j] = true
				stack = append(stack, int32(j))
			}
		}
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, dj := range newOut[j] {
				if !anchored[dj] {
					anchored[dj] = true
					stack = append(stack, dj)
				}
			}
		}
		for j := 0; j < k; j++ {
			if !anchored[j] {
				return nil
			}
		}
	}

	// Which slots need (re)materialized overlays: every edit endpoint, plus
	// base or already-overlaid slots gaining new edges.
	needTouch := make(map[int32]bool)
	for _, er := range edits {
		needTouch[slotOf(er.o.Src)] = true
		needTouch[slotOf(er.o.Dst)] = true
	}
	for _, ei := range pend.newEdges {
		e := g.edges[ei]
		if s := slotOf(e.Src); s < baseN || prev.touched[s] != nil {
			needTouch[s] = true
		}
		// e.Dst is always a new vertex here (checked above): its fresh
		// shared adjacency absorbs appends without an overlay.
	}
	touchSlots := make([]int32, 0, len(needTouch))
	for s := range needTouch {
		touchSlots = append(touchSlots, s)
	}
	slices.Sort(touchSlots)
	touchedCount := len(prev.touched)
	totalOv := 0
	for _, ov := range prev.touched {
		totalOv += len(ov.outE) + len(ov.inE)
	}
	for _, s := range touchSlots {
		if prev.touched[s] == nil {
			touchedCount++
			totalOv += prev.OutDegree(s) + prev.InDegree(s)
		}
	}
	if touchedCount > maxTouchedSlots || totalOv+2*len(pend.newEdges) > maxTouchedEdges {
		return nil
	}

	// All checks passed — from here on the epoch's shared state is extended.

	// 1. Assign overlay slots to new vertices.
	nTasksAll := prev.nTasksAll
	for _, v := range pend.newVerts {
		slot := baseN + int32(len(ep.extraIDs))
		ep.extraIDs = append(ep.extraIDs, v.ID)
		ep.extraVerts = append(ep.extraVerts, v)
		ep.extraAdj = append(ep.extraAdj, &slotAdj{})
		ep.posExtra.Store(v.ID, slot)
		if v.ID.Kind == TaskVertex {
			nTasksAll++
		}
	}

	// 2. Copy-on-write overlays for the touched slots.
	touched := prev.touched
	if len(touchSlots) > 0 {
		touched = make(map[int32]*slotOverlay, len(prev.touched)+len(touchSlots))
		for s, ov := range prev.touched {
			touched[s] = ov
		}
		for _, s := range touchSlots {
			touched[s] = materializeOverlay(prev, s, touched[s])
		}
	}

	// 3. Apply edit pointer swaps and extend the cumulative edited map.
	edited := prev.edited
	if len(edits) > 0 {
		edited = make(map[*Edge]*Edge, len(prev.edited)+len(edits))
		for o, c := range prev.edited {
			edited[o] = c
		}
		if ep.origPtr == nil {
			ep.origPtr = make(map[int32]*Edge)
		}
		for _, er := range edits {
			ap, ok := ep.origPtr[er.i]
			if !ok {
				ap = er.o
				ep.origPtr[er.i] = ap
			}
			edited[ap] = er.c
			swapEdge(touched[slotOf(er.o.Src)].outE, er.o, er.c)
			swapEdge(touched[slotOf(er.o.Dst)].inE, er.o, er.c)
		}
	}

	// 3b. Extend the cumulative vertex-edit map, keyed by the pointer stored
	// in the epoch's shared verts/extraVerts arrays (which never change within
	// an epoch), so repeated edits of the same vertex key consistently.
	editedVerts := prev.editedVerts
	if len(vertEdits) > 0 {
		editedVerts = make(map[*Vertex]*Vertex, len(prev.editedVerts)+len(vertEdits))
		for o, c := range prev.editedVerts {
			editedVerts[o] = c
		}
		if ep.origVertPtr == nil {
			ep.origVertPtr = make(map[ID]*Vertex)
		}
		for _, er := range vertEdits {
			ap, ok := ep.origVertPtr[er.id]
			if !ok {
				ap = er.o
				ep.origVertPtr[er.id] = ap
			}
			editedVerts[ap] = er.c
		}
	}

	// 4. Append new edges: overlaid slots grow their private lists, fresh
	// overlay slots grow the shared seq-marked halves.
	for _, ei := range pend.newEdges {
		e := g.edges[ei]
		seq := int32(len(ep.extraEdges))
		ep.extraEdges = append(ep.extraEdges, e)
		s, d := slotOf(e.Src), slotOf(e.Dst)
		if ov := touched[s]; ov != nil {
			ov.outE = append(ov.outE, e)
			ov.outD = append(ov.outD, d)
		} else {
			appendHalf(&ep.extraAdj[s-baseN].out, e, d, seq)
		}
		if ov := touched[d]; ov != nil {
			ov.inE = append(ov.inE, e)
			ov.inS = append(ov.inS, s)
		} else {
			appendHalf(&ep.extraAdj[d-baseN].in, e, s, seq)
		}
	}

	// 5. Topological order: exact suffix via mini-Kahn over the new subgraph.
	n := prev.n + k
	var (
		topo    []int32
		topoIDs []ID
		topoErr error
	)
	if !structural {
		topo, topoIDs, topoErr = prev.topo, prev.topoIDs, prev.topoErr
	} else {
		suffix := topoSuffix(pend.newVerts, newIndeg, newOut)
		if len(suffix) < k {
			topoErr = fmt.Errorf("dfl: graph has a cycle (%d of %d vertices ordered)",
				prev.n+len(suffix), n)
		} else {
			for _, j := range suffix {
				ep.topoSlots = append(ep.topoSlots, prevN+j)
				ep.topoIDs = append(ep.topoIDs, pend.newVerts[j].ID)
			}
			topo = ep.topoSlots[:n]
			topoIDs = ep.topoIDs[:n]
		}
	}

	// 6. Aggregates.
	totalVolume := prev.totalVolume
	bestRate := prev.bestRate
	for _, ei := range pend.newEdges {
		e := g.edges[ei]
		totalVolume += e.Props.Volume
		if r := e.Props.Rate(); r > bestRate {
			bestRate = r
		}
	}
	for _, er := range edits {
		totalVolume += er.c.Props.Volume - er.o.Props.Volume
		if r := er.c.Props.Rate(); r > bestRate {
			bestRate = r
		}
	}

	ix := &Index{
		ids:    prev.ids,
		pos:    prev.pos,
		verts:  prev.verts,
		nTasks: prev.nTasks,
		baseN:  baseN,

		edges:    prev.edges,
		outOff:   prev.outOff,
		inOff:    prev.inOff,
		outEdges: prev.outEdges,
		inEdges:  prev.inEdges,
		outDst:   prev.outDst,
		inSrc:    prev.inSrc,

		n:         n,
		nTasksAll: nTasksAll,
		mEdges:    len(g.edges),

		extraIDs:    ep.extraIDs,
		extraVerts:  ep.extraVerts,
		extraAdj:    ep.extraAdj,
		extraEdges:  ep.extraEdges,
		seqMark:     int32(len(ep.extraEdges)),
		posExtra:    ep.posExtra,
		touched:     touched,
		edited:      edited,
		editedVerts: editedVerts,

		topo:    topo,
		topoIDs: topoIDs,
		topoErr: topoErr,

		totalVolume: totalVolume,
		bestRate:    bestRate,
		prod:        prev.prod,
		cons:        prev.cons,
	}

	// 7. Fingerprint sums carried in O(delta) when the previous snapshot
	// computed them; otherwise left lazy.
	if prev.fpReady.Load() {
		vs, es := prev.vertSum, prev.edgeSum
		for _, v := range pend.newVerts {
			vs += vertexHash(v)
		}
		for _, ei := range pend.newEdges {
			es += edgeHash(g.edges[ei])
		}
		for _, er := range edits {
			es += edgeHash(er.c) - edgeHash(er.o)
		}
		for _, er := range vertEdits {
			vs += vertexHash(er.c) - vertexHash(er.o)
		}
		ix.vertSum, ix.edgeSum = vs, es
		ix.fp = combineFingerprint(n, ix.mEdges, vs, es)
		ix.fpReady.Store(true)
	}
	return ix
}

// materializeOverlay builds the private adjacency override for slot s as the
// previous snapshot saw it: cloning an existing overlay, or expanding the
// base CSR span / shared half prefix with cumulative edits applied.
func materializeOverlay(prev *Index, s int32, existing *slotOverlay) *slotOverlay {
	ov := &slotOverlay{}
	if existing != nil {
		ov.outE = slices.Clone(existing.outE)
		ov.outD = slices.Clone(existing.outD)
		ov.inE = slices.Clone(existing.inE)
		ov.inS = slices.Clone(existing.inS)
		return ov
	}
	repl := func(es []*Edge) []*Edge {
		out := make([]*Edge, len(es))
		for i, e := range es {
			if c, ok := prev.edited[e]; ok {
				e = c
			}
			out[i] = e
		}
		return out
	}
	if s < prev.baseN {
		lo, hi := prev.outOff[s], prev.outOff[s+1]
		ov.outE = repl(prev.outEdges[lo:hi])
		ov.outD = slices.Clone(prev.outDst[lo:hi])
		lo, hi = prev.inOff[s], prev.inOff[s+1]
		ov.inE = repl(prev.inEdges[lo:hi])
		ov.inS = slices.Clone(prev.inSrc[lo:hi])
		return ov
	}
	a := prev.extraAdj[s-prev.baseN]
	if h := a.out.Load(); h != nil {
		kv := h.visible(prev.seqMark)
		ov.outE = repl(h.edges[:kv])
		ov.outD = slices.Clone(h.peers[:kv])
	}
	if h := a.in.Load(); h != nil {
		kv := h.visible(prev.seqMark)
		ov.inE = repl(h.edges[:kv])
		ov.inS = slices.Clone(h.peers[:kv])
	}
	return ov
}

// sortedEditKeys returns the edited edge indices in ascending order so edit
// replay is deterministic by construction rather than by a commutativity
// argument over map iteration order.
func sortedEditKeys(m map[int32]*Edge) []int32 {
	keys := make([]int32, 0, len(m))
	for i := range m {
		keys = append(keys, i)
	}
	slices.Sort(keys)
	return keys
}

// sortedVertEditKeys is the vertex analogue of sortedEditKeys: edited vertex
// IDs in canonical order for deterministic replay.
func sortedVertEditKeys(m map[ID]*Vertex) []ID {
	keys := make([]ID, 0, len(m))
	for id := range m {
		keys = append(keys, id)
	}
	slices.SortFunc(keys, cmpID)
	return keys
}

func swapEdge(es []*Edge, o, c *Edge) {
	for i, e := range es {
		if e == o {
			es[i] = c
		}
	}
}

// topoSuffix runs the deterministic FIFO Kahn over the new-vertex subgraph:
// seeds (zero new-indegree, i.e. freed exactly when the anchor pops) and
// every freed batch are sorted by canonical ID, matching the dense-index
// sort of a full rebuild. indeg is consumed. Returns the pop order as local
// indices; shorter than len(verts) when the new vertices contain a cycle.
func topoSuffix(verts []*Vertex, indeg []int32, out [][]int32) []int32 {
	k := len(verts)
	byID := func(a, b int32) int { return cmpID(verts[a].ID, verts[b].ID) }
	var batch []int32
	for j := 0; j < k; j++ {
		if indeg[j] == 0 {
			batch = append(batch, int32(j))
		}
	}
	slices.SortFunc(batch, byID)
	queue := make([]int32, 0, k)
	queue = append(queue, batch...)
	order := make([]int32, 0, k)
	for head := 0; head < len(queue); head++ {
		j := queue[head]
		order = append(order, j)
		batch = batch[:0]
		for _, dj := range out[j] {
			indeg[dj]--
			if indeg[dj] == 0 {
				batch = append(batch, dj)
			}
		}
		slices.SortFunc(batch, byID)
		queue = append(queue, batch...)
	}
	return order
}
