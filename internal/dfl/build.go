package dfl

import (
	"runtime"
	"sync"

	"datalife/internal/blockstats"
	"datalife/internal/iotrace"
)

// Build constructs a DFL-DAG from collector measurements (§4.1): since each
// histogram captures one or two flow relations, the graph is built simply by
// connecting all edges. Each task instance is a distinct vertex, so the
// result is acyclic.
func Build(col *iotrace.Collector) *Graph {
	g := New()
	for _, ti := range col.Tasks() {
		v := g.AddTask(ti.Name)
		v.Task.Lifetime = ti.Lifetime()
	}
	for _, fl := range col.Flows() {
		addFlow(g, fl)
	}
	return g
}

// addFlow converts one task-file histogram into its producer and/or consumer
// edges and folds its aggregates into the endpoint vertices.
func addFlow(g *Graph, fl *blockstats.FlowStat) {
	task := g.AddTask(fl.Task)
	data := g.AddData(fl.File)

	if fl.FileSize() > data.Data.Size {
		data.Data.Size = fl.FileSize()
	}
	if lt := fl.FileLifetime(); lt > data.Data.Lifetime {
		data.Data.Lifetime = lt
	}

	task.Task.ReadOps += fl.ReadOps
	task.Task.WriteOps += fl.WriteOps
	task.Task.InVolume += fl.ReadBytes
	task.Task.OutVolume += fl.WriteBytes
	task.Task.ReadLatency += fl.ReadTime
	task.Task.WriteLatency += fl.WriteTime

	if fl.ReadOps > 0 {
		// Consumer relation: data → task.
		mustEdge(g, data.ID, task.ID, Consumer, FlowProps{
			Ops:           fl.ReadOps,
			Volume:        fl.ReadBytes,
			Footprint:     fl.Footprint(blockstats.Read),
			Latency:       fl.ReadTime,
			MeanDistance:  fl.MeanDistance(),
			ZeroDistFrac:  fl.ZeroDistanceFraction(),
			SmallDistFrac: fl.SmallDistanceFraction(),
		})
	}
	if fl.WriteOps > 0 {
		// Producer relation: task → data.
		mustEdge(g, task.ID, data.ID, Producer, FlowProps{
			Ops:           fl.WriteOps,
			Volume:        fl.WriteBytes,
			Footprint:     fl.Footprint(blockstats.Write),
			Latency:       fl.WriteTime,
			MeanDistance:  fl.MeanDistance(),
			ZeroDistFrac:  fl.ZeroDistanceFraction(),
			SmallDistFrac: fl.SmallDistanceFraction(),
		})
	}
}

// mustEdge adds an edge whose direction is known correct by construction.
func mustEdge(g *Graph, src, dst ID, kind EdgeKind, p FlowProps) {
	if _, err := g.AddEdge(src, dst, kind, p); err != nil {
		panic(err) // unreachable: directions are fixed above
	}
}

// BuildSaved reconstructs a DFL-DAG from a persisted measurement database
// (iotrace.SaveJSON/LoadJSON) — the analyze-later path the paper's artifact
// uses with its stored I/O state.
func BuildSaved(st *iotrace.SavedState) *Graph {
	g := New()
	for i := range st.Tasks {
		ti := &st.Tasks[i]
		v := g.AddTask(ti.Name)
		v.Task.Lifetime = ti.End - ti.Start
	}
	for _, sf := range st.Flows {
		task := g.AddTask(sf.Task)
		data := g.AddData(sf.File)
		if sf.FileSize > data.Data.Size {
			data.Data.Size = sf.FileSize
		}
		if sf.FileLifetime > data.Data.Lifetime {
			data.Data.Lifetime = sf.FileLifetime
		}
		task.Task.ReadOps += sf.ReadOps
		task.Task.WriteOps += sf.WriteOps
		task.Task.InVolume += sf.ReadBytes
		task.Task.OutVolume += sf.WriteBytes
		task.Task.ReadLatency += sf.ReadTime
		task.Task.WriteLatency += sf.WriteTime
		if sf.ReadOps > 0 {
			mustEdge(g, data.ID, task.ID, Consumer, FlowProps{
				Ops: sf.ReadOps, Volume: sf.ReadBytes, Footprint: sf.ReadFootprint,
				Latency: sf.ReadTime, MeanDistance: sf.MeanDistance,
				ZeroDistFrac: sf.ZeroDistFrac, SmallDistFrac: sf.SmallDistFrac,
			})
		}
		if sf.WriteOps > 0 {
			mustEdge(g, task.ID, data.ID, Producer, FlowProps{
				Ops: sf.WriteOps, Volume: sf.WriteBytes, Footprint: sf.WriteFootprint,
				Latency: sf.WriteTime, MeanDistance: sf.MeanDistance,
				ZeroDistFrac: sf.ZeroDistFrac, SmallDistFrac: sf.SmallDistFrac,
			})
		}
	}
	return g
}

// BuildParallel constructs the DFL-DAG with worker goroutines, serializing
// only the vertex/edge insertions (§4.1: "DFL-G construction can be
// parallelized by ensuring vertex updates are atomic"). Flow statistics —
// footprints, distances, ratios — are derived concurrently; results are
// identical to Build.
func BuildParallel(col *iotrace.Collector) *Graph {
	g := New()
	var mu sync.Mutex
	for _, ti := range col.Tasks() {
		v := g.AddTask(ti.Name)
		v.Task.Lifetime = ti.Lifetime()
	}
	flows := col.Flows()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(flows) {
		workers = len(flows)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan *blockstats.FlowStat)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fl := range ch {
				// Derive statistics outside the lock; mutate under it.
				type edgeSpec struct {
					kind EdgeKind
					p    FlowProps
				}
				var specs []edgeSpec
				if fl.ReadOps > 0 {
					specs = append(specs, edgeSpec{Consumer, FlowProps{
						Ops: fl.ReadOps, Volume: fl.ReadBytes,
						Footprint: fl.Footprint(blockstats.Read),
						Latency:   fl.ReadTime, MeanDistance: fl.MeanDistance(),
						ZeroDistFrac:  fl.ZeroDistanceFraction(),
						SmallDistFrac: fl.SmallDistanceFraction(),
					}})
				}
				if fl.WriteOps > 0 {
					specs = append(specs, edgeSpec{Producer, FlowProps{
						Ops: fl.WriteOps, Volume: fl.WriteBytes,
						Footprint: fl.Footprint(blockstats.Write),
						Latency:   fl.WriteTime, MeanDistance: fl.MeanDistance(),
						ZeroDistFrac:  fl.ZeroDistanceFraction(),
						SmallDistFrac: fl.SmallDistanceFraction(),
					}})
				}
				size, lifetime := fl.FileSize(), fl.FileLifetime()

				mu.Lock()
				task := g.AddTask(fl.Task)
				data := g.AddData(fl.File)
				if size > data.Data.Size {
					data.Data.Size = size
				}
				if lifetime > data.Data.Lifetime {
					data.Data.Lifetime = lifetime
				}
				task.Task.ReadOps += fl.ReadOps
				task.Task.WriteOps += fl.WriteOps
				task.Task.InVolume += fl.ReadBytes
				task.Task.OutVolume += fl.WriteBytes
				task.Task.ReadLatency += fl.ReadTime
				task.Task.WriteLatency += fl.WriteTime
				for _, s := range specs {
					if s.kind == Consumer {
						mustEdge(g, data.ID, task.ID, Consumer, s.p)
					} else {
						mustEdge(g, task.ID, data.ID, Producer, s.p)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, fl := range flows {
		ch <- fl
	}
	close(ch)
	wg.Wait()
	return g
}
