package dfl

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// shadowGraph is a naive reference implementation mirroring the seed's
// map-based query semantics: insertion-order adjacency, sort-on-demand
// snapshots, Kahn topological order with sorted seeds and sorted freed
// successors. The property test checks the indexed core against it.
type shadowGraph struct {
	verts map[ID]bool
	out   map[ID][]*Edge
	in    map[ID][]*Edge
	edges []*Edge
}

func newShadow() *shadowGraph {
	return &shadowGraph{verts: make(map[ID]bool), out: make(map[ID][]*Edge), in: make(map[ID][]*Edge)}
}

func (s *shadowGraph) addEdge(e *Edge) {
	s.verts[e.Src] = true
	s.verts[e.Dst] = true
	s.edges = append(s.edges, e)
	s.out[e.Src] = append(s.out[e.Src], e)
	s.in[e.Dst] = append(s.in[e.Dst], e)
}

func (s *shadowGraph) ids() []ID {
	out := make([]ID, 0, len(s.verts))
	for id := range s.verts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func (s *shadowGraph) sortedEdges() []*Edge {
	out := append([]*Edge(nil), s.edges...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return less(out[i].Src, out[j].Src)
		}
		return less(out[i].Dst, out[j].Dst)
	})
	return out
}

// topo reproduces the seed's deterministic Kahn order over ID maps.
func (s *shadowGraph) topo() ([]ID, bool) {
	indeg := make(map[ID]int)
	for _, e := range s.edges {
		indeg[e.Dst]++
	}
	var queue []ID
	for id := range s.verts {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return less(queue[i], queue[j]) })
	var order []ID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		var freed []ID
		for _, e := range s.out[id] {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				freed = append(freed, e.Dst)
			}
		}
		sort.Slice(freed, func(i, j int) bool { return less(freed[i], freed[j]) })
		queue = append(queue, freed...)
	}
	return order, len(order) == len(s.verts)
}

func (s *shadowGraph) distinctTasks(edges []*Edge) []ID {
	seen := make(map[ID]bool)
	var out []ID
	for _, e := range edges {
		for _, id := range []ID{e.Src, e.Dst} {
			if id.Kind == TaskVertex && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// randomDFL builds a random bipartite DAG: vertices v0..v(n-1) with random
// kinds, edges only forward (i < j) between opposite kinds, so acyclicity
// holds by construction. Returns the graph and its shadow.
func randomDFL(rng *rand.Rand, n, extraEdges int) (*Graph, *shadowGraph) {
	g := New()
	sh := newShadow()
	kinds := make([]VertexKind, n)
	ids := make([]ID, n)
	for i := range ids {
		kinds[i] = VertexKind(rng.Intn(2))
		name := fmt.Sprintf("v%03d", i)
		if kinds[i] == TaskVertex {
			ids[i] = TaskID(name)
			g.AddTask(name)
		} else {
			ids[i] = DataID(name)
			g.AddData(name)
		}
		sh.verts[ids[i]] = true
	}
	used := make(map[[2]int]bool)
	addRandEdge := func() {
		i, j := rng.Intn(n), rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		// Skip self/same-kind pairs and duplicates: collector-built DFL
		// graphs have at most one edge per (src, dst).
		if i == j || kinds[i] == kinds[j] || used[[2]int{i, j}] {
			return
		}
		used[[2]int{i, j}] = true
		kind := Producer
		if kinds[i] == DataVertex {
			kind = Consumer
		}
		props := FlowProps{
			Ops:     uint64(rng.Intn(100)),
			Volume:  uint64(rng.Intn(1 << 20)),
			Latency: rng.Float64() * 10,
		}
		e, err := g.AddEdge(ids[i], ids[j], kind, props)
		if err != nil {
			panic(err)
		}
		sh.addEdge(e)
	}
	// A forward chain-ish sweep plus random extras.
	for k := 0; k < n+extraEdges; k++ {
		addRandEdge()
	}
	return g, sh
}

func idsEqual(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func edgesEqual(a, b []*Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAgainstShadow compares every Index-backed query with the naive
// reference.
func checkAgainstShadow(t *testing.T, g *Graph, sh *shadowGraph) {
	t.Helper()
	wantIDs := sh.ids()
	gotVerts := g.Vertices()
	if len(gotVerts) != len(wantIDs) {
		t.Fatalf("Vertices: got %d, want %d", len(gotVerts), len(wantIDs))
	}
	for i, v := range gotVerts {
		if v.ID != wantIDs[i] {
			t.Fatalf("Vertices[%d] = %v, want %v", i, v.ID, wantIDs[i])
		}
	}
	// Tasks/DataFiles are the kind-partitioned prefixes of the same order.
	nt := 0
	for _, id := range wantIDs {
		if id.Kind == TaskVertex {
			nt++
		}
	}
	if len(g.Tasks()) != nt || len(g.DataFiles()) != len(wantIDs)-nt {
		t.Fatalf("Tasks/DataFiles split = %d/%d, want %d/%d",
			len(g.Tasks()), len(g.DataFiles()), nt, len(wantIDs)-nt)
	}
	if !edgesEqual(g.Edges(), sh.sortedEdges()) {
		t.Fatal("Edges snapshot differs from reference sort")
	}
	wantTopo, acyclic := sh.topo()
	gotTopo, err := g.TopoSort()
	if acyclic != (err == nil) {
		t.Fatalf("TopoSort acyclicity: got err=%v, reference acyclic=%v", err, acyclic)
	}
	if acyclic && !idsEqual(gotTopo, wantTopo) {
		t.Fatalf("TopoSort order differs:\n got %v\nwant %v", gotTopo, wantTopo)
	}
	var totalVol uint64
	var bestRate float64
	for _, e := range sh.edges {
		totalVol += e.Props.Volume
		if r := e.Props.Rate(); r > bestRate {
			bestRate = r
		}
	}
	if g.TotalVolume() != totalVol {
		t.Fatalf("TotalVolume = %d, want %d", g.TotalVolume(), totalVol)
	}
	if g.BestRate() != bestRate {
		t.Fatalf("BestRate = %g, want %g", g.BestRate(), bestRate)
	}
	for _, id := range wantIDs {
		if !edgesEqual(g.Out(id), sh.out[id]) || !edgesEqual(g.In(id), sh.in[id]) {
			t.Fatalf("adjacency of %v differs from insertion order", id)
		}
		if g.OutDegree(id) != len(sh.out[id]) || g.InDegree(id) != len(sh.in[id]) {
			t.Fatalf("degree of %v differs", id)
		}
		if id.Kind == DataVertex {
			if !idsEqual(g.Producers(id), sh.distinctTasks(sh.in[id])) {
				t.Fatalf("Producers(%v) differs", id)
			}
			if !idsEqual(g.Consumers(id), sh.distinctTasks(sh.out[id])) {
				t.Fatalf("Consumers(%v) differs", id)
			}
		}
	}
	// Dense index accessors agree with the ID view. Overlay snapshots place
	// delta vertices after the base, so slot order is not the canonical sort;
	// what must hold is the Pos/IDAt bijection over exactly the live IDs.
	ix := g.Index()
	seenSlot := make(map[int32]bool, len(wantIDs))
	for _, id := range wantIDs {
		p := ix.Pos(id)
		if p < 0 || int(p) >= ix.Len() || ix.IDAt(p) != id {
			t.Fatalf("Pos/IDAt round-trip broken for %v (slot %d)", id, p)
		}
		if seenSlot[p] {
			t.Fatalf("slot %d assigned to two IDs", p)
		}
		seenSlot[p] = true
	}
	for i := int32(0); i < int32(ix.Len()); i++ {
		outs, dsts := ix.Out(i)
		for k := range outs {
			if ix.IDAt(dsts[k]) != outs[k].Dst {
				t.Fatalf("Out dense dst mismatch at vertex %d", i)
			}
		}
		ins, srcs := ix.In(i)
		for k := range ins {
			if ix.IDAt(srcs[k]) != ins[k].Src {
				t.Fatalf("In dense src mismatch at vertex %d", i)
			}
		}
	}
}

// TestIndexMatchesReferenceOnRandomDAGs is the property-based equivalence
// test: on randomized DFL DAGs, every query served by the indexed core must
// answer exactly what the seed's map-based implementation answered, including
// after interleaved mutation (which must invalidate the cached snapshot).
func TestIndexMatchesReferenceOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g, sh := randomDFL(rng, n, rng.Intn(3*n))
		checkAgainstShadow(t, g, sh)

		// Mutate after querying: the snapshot must be rebuilt, not stale.
		name := fmt.Sprintf("late%02d", trial)
		tv, dv := g.AddTask(name), g.AddData(name)
		e, err := g.AddEdge(tv.ID, dv.ID, Producer, FlowProps{Volume: 7, Latency: 1})
		if err != nil {
			t.Fatal(err)
		}
		sh.verts[tv.ID] = true
		sh.verts[dv.ID] = true
		sh.addEdge(e)
		checkAgainstShadow(t, g, sh)
	}
}

// TestIndexInvalidateOnPropMutation checks the explicit Invalidate escape
// hatch: mutating edge props through FindEdge after queries ran must change
// cached aggregates once Invalidate is called.
func TestIndexInvalidateOnPropMutation(t *testing.T) {
	g := New()
	g.AddTask("t")
	g.AddData("d")
	if _, err := g.AddEdge(TaskID("t"), DataID("d"), Producer, FlowProps{Volume: 10, Latency: 2}); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalVolume(); got != 10 {
		t.Fatalf("TotalVolume = %d, want 10", got)
	}
	fp := g.Fingerprint()
	g.FindEdge(TaskID("t"), DataID("d")).Props.Volume = 20
	g.Invalidate()
	if got := g.TotalVolume(); got != 20 {
		t.Fatalf("TotalVolume after Invalidate = %d, want 20", got)
	}
	if g.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged after property mutation + Invalidate")
	}
}

// TestFingerprintContentIdentity checks that structurally and numerically
// identical graphs collide and any content difference separates them.
func TestFingerprintContentIdentity(t *testing.T) {
	build := func(vol uint64) *Graph {
		g := New()
		g.AddTask("a")
		g.AddData("x")
		g.AddTask("b")
		if _, err := g.AddEdge(TaskID("a"), DataID("x"), Producer, FlowProps{Volume: vol, Latency: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(DataID("x"), TaskID("b"), Consumer, FlowProps{Volume: vol, Latency: 2}); err != nil {
			t.Fatal(err)
		}
		return g
	}
	if build(5).Fingerprint() != build(5).Fingerprint() {
		t.Fatal("identical graphs got different fingerprints")
	}
	if build(5).Fingerprint() == build(6).Fingerprint() {
		t.Fatal("different volumes got the same fingerprint")
	}
	g := build(5)
	g.AddData("extra")
	if g.Fingerprint() == build(5).Fingerprint() {
		t.Fatal("extra vertex did not change the fingerprint")
	}
}
