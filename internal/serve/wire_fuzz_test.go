package serve

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame reader and message
// decoder: truncated frames, corrupt CRCs, oversize lengths, and hostile
// event counts must all surface as errors — never a panic, and never an
// allocation driven by a claimed length instead of actual bytes.
func FuzzWireDecode(f *testing.F) {
	// Seeds: every real message type, plus deliberately broken frames.
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(encodeHello(helloMsg{Version: ProtoVersion, Session: "w"})))
	f.Add(frame(encodeWelcome(welcomeMsg{NextSeq: 42, Resumed: true})))
	f.Add(frame(encodeReject(rejectMsg{Kind: KindOverloaded, Retryable: true, Seq: 7, Detail: "full"})))
	f.Add(frame(encodeEvents(eventsMsg{FirstSeq: 3, Events: ChainEvents(2)})))
	f.Add(frame(encodeAck(ackMsg{Durable: 9})))
	f.Add(frame(encodeQuery(queryMsg{Kind: "summary", Top: 5, MinSeq: 10})))
	f.Add(frame(encodeResult(resultMsg{Applied: 4, Synced: 4, Body: "ok"})))
	f.Add(frame(encodeBye()))
	// Torn frame (header only), corrupt CRC, hostile length prefix, hostile
	// event count.
	good := frame(encodeAck(ackMsg{Durable: 1}))
	f.Add(good[:2])
	bad := append([]byte{}, good...)
	bad[1] ^= 0xff
	f.Add(bad)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(frame([]byte{byte(msgEvents), 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f}))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		if len(data) > 4*maxFrame {
			data = data[:4*maxFrame]
		}
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			payload, err := readFrame(br, maxFrame)
			if err != nil {
				if err != io.EOF && err.Error() == "" {
					t.Fatal("empty error message")
				}
				break
			}
			// A frame that passed CRC still carries arbitrary bytes; decoding
			// must return a typed message or an error, never panic.
			msg, err := decodeMessage(payload)
			if err != nil {
				continue
			}
			switch m := msg.(type) {
			case eventsMsg:
				// The decoder's pre-allocation guard: event slices must be
				// backed by real payload bytes, not a hostile count.
				if len(m.Events) > len(payload) {
					t.Fatalf("decoded %d events from %d payload bytes",
						len(m.Events), len(payload))
				}
				for _, ev := range m.Events {
					if ev.Rep < 0 {
						t.Fatalf("negative repeat count %d survived decode", ev.Rep)
					}
				}
			case helloMsg, welcomeMsg, rejectMsg, ackMsg, queryMsg, resultMsg, byeMsg:
			default:
				t.Fatalf("unknown decoded type %T", m)
			}
		}
	})
}

// TestWireRoundTrip pins encode→frame→decode equality for every message type,
// including a full event batch — the property the fuzz target explores from
// hostile inputs, checked here on the happy path.
func TestWireRoundTrip(t *testing.T) {
	events := ChainEvents(3)
	msgs := []any{
		helloMsg{Version: ProtoVersion, Session: "sess-1"},
		welcomeMsg{NextSeq: 77, Resumed: true},
		rejectMsg{Kind: KindDeadline, Retryable: true, Seq: 12, Detail: "idle"},
		eventsMsg{FirstSeq: 5, Events: events},
		ackMsg{Durable: 99},
		queryMsg{Kind: "cpa", Top: 3, MinSeq: 44},
		resultMsg{Applied: 9, Synced: 8, Stale: true, Err: "", Body: "hello\nworld"},
		byeMsg{},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		var payload []byte
		switch v := m.(type) {
		case helloMsg:
			payload = encodeHello(v)
		case welcomeMsg:
			payload = encodeWelcome(v)
		case rejectMsg:
			payload = encodeReject(v)
		case eventsMsg:
			payload = encodeEvents(v)
		case ackMsg:
			payload = encodeAck(v)
		case queryMsg:
			payload = encodeQuery(v)
		case resultMsg:
			payload = encodeResult(v)
		case byeMsg:
			payload = encodeBye()
		}
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range msgs {
		payload, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := decodeMessage(payload)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		switch w := want.(type) {
		case eventsMsg:
			g, ok := got.(eventsMsg)
			if !ok || g.FirstSeq != w.FirstSeq || len(g.Events) != len(w.Events) {
				t.Fatalf("events round trip: %+v", got)
			}
			for j := range g.Events {
				if g.Events[j] != w.Events[j] {
					t.Fatalf("event %d: %+v != %+v", j, g.Events[j], w.Events[j])
				}
			}
		default:
			if got != want {
				t.Fatalf("message %d: %+v != %+v", i, got, want)
			}
		}
	}
	if _, err := readFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
}
