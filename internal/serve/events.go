package serve

import (
	"fmt"

	"datalife/internal/iotrace"
)

// ChainEvents synthesizes the trace-event stream of a deterministic pipeline
// workflow: n stages where stage i runs task t<i>, reads its predecessor's
// output d<i-1> (for i > 0), and writes d<i>. Volumes cycle like the
// experiments.Stream chain (1 + i mod 97, scaled to bytes), times are pure
// functions of i — the same n produces byte-identical streams on every
// machine, which the kill-and-resume gate relies on to compare an interrupted
// run against an uninterrupted one.
func ChainEvents(n int) []iotrace.TraceEvent {
	evs := make([]iotrace.TraceEvent, 0, 8*n)
	for i := 0; i < n; i++ {
		task := fmt.Sprintf("t%d", i)
		out := fmt.Sprintf("d%d", i)
		t0 := float64(i)
		vol := int64(1+i%97) * 4096
		evs = append(evs, iotrace.TraceEvent{Kind: iotrace.EvTaskStart, Task: task, T: t0})
		if i > 0 {
			in := fmt.Sprintf("d%d", i-1)
			inVol := int64(1+(i-1)%97) * 4096
			evs = append(evs,
				iotrace.TraceEvent{Kind: iotrace.EvOpen, Task: task, File: in, FileSize: inVol, T: t0 + 0.1},
				iotrace.TraceEvent{Kind: iotrace.EvReadChunks, Task: task, File: in, FileSize: inVol,
					Off: 0, Len: inVol, Chunk: 4096, Rep: 1, T: t0 + 0.2, Dt: 0.001},
				iotrace.TraceEvent{Kind: iotrace.EvClose, Task: task, File: in, T: t0 + 0.4},
			)
		}
		evs = append(evs,
			iotrace.TraceEvent{Kind: iotrace.EvOpen, Task: task, File: out, FileSize: vol, T: t0 + 0.5},
			iotrace.TraceEvent{Kind: iotrace.EvWriteChunks, Task: task, File: out, FileSize: vol,
				Off: 0, Len: vol, Chunk: 4096, Rep: 1, T: t0 + 0.6, Dt: 0.001},
			iotrace.TraceEvent{Kind: iotrace.EvClose, Task: task, File: out, T: t0 + 0.8},
			iotrace.TraceEvent{Kind: iotrace.EvTaskEnd, Task: task, T: t0 + 1},
		)
	}
	return evs
}
