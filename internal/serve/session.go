package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"datalife/internal/advisor"
	"datalife/internal/blockstats"
	"datalife/internal/cpa"
	"datalife/internal/dfl"
	"datalife/internal/iotrace"
	"datalife/internal/journal"
	"datalife/internal/patterns"
)

// session is the server-side state of one client stream: a private collector
// and live DFL graph, a crash-consistent journal, and the ingest queue that
// decouples wire acknowledgement (durable) from analysis state (applied,
// synced).
//
// Sequence discipline: every event has a sequence number; nextSeq is the next
// number the journal has not made durable, appliedSeq the next not yet folded
// into the collector, syncedSeq the next not yet reflected in the DFL graph.
// nextSeq >= appliedSeq >= syncedSeq always, and a batch is acknowledged to
// the client only after its suffix beyond nextSeq is journaled and fsynced —
// so a SIGKILL at any instant loses only unacknowledged events, which the
// client resends on reconnect.
type session struct {
	name string
	path string

	// mu guards the collector, graph, dirty sets, appliedSeq, and syncedSeq.
	// The applier mutates under it; query handlers read (and may sync) under
	// it. cond broadcasts applier progress for queries waiting on MinSeq.
	mu   sync.Mutex
	cond *sync.Cond

	col *iotrace.Collector
	g   *dfl.Graph

	// nextSeq is owned by the attached connection goroutine (only one at a
	// time); written during replay before the session is visible.
	nextSeq    uint64
	appliedSeq uint64 // under mu
	syncedSeq  uint64 // under mu

	// replayTruncated records that journal recovery dropped a torn tail.
	replayTruncated bool
	resumed         bool

	jf *os.File
	jw *journal.Writer

	// queue carries journaled batches to the applier; slots is the matching
	// counting semaphore, acquired before journaling so an accepted batch is
	// guaranteed to enqueue without blocking.
	queue chan eventsMsg
	slots chan struct{}

	quit        chan struct{}
	applierDone chan struct{}

	// Dirty bookkeeping between syncs, plus the cumulative flow membership
	// needed to recompute a task or file vertex from scratch.
	dirtyTasks map[string]bool
	dirtyFiles map[string]bool
	dirtyFlows map[[2]string]bool
	taskFiles  map[string]map[string]bool
	fileTasks  map[string]map[string]bool

	attached bool // under Server.mu
}

func newSession(name, path string, cfg blockstats.Config, depth int) (*session, error) {
	col, err := iotrace.NewCollector(cfg)
	if err != nil {
		return nil, err
	}
	s := &session{
		name:        name,
		path:        path,
		col:         col,
		g:           dfl.New(),
		queue:       make(chan eventsMsg, depth),
		slots:       make(chan struct{}, depth),
		quit:        make(chan struct{}),
		applierDone: make(chan struct{}),
		dirtyTasks:  make(map[string]bool),
		dirtyFiles:  make(map[string]bool),
		dirtyFlows:  make(map[[2]string]bool),
		taskFiles:   make(map[string]map[string]bool),
		fileTasks:   make(map[string]map[string]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// recover replays the session's journal file (creating it if absent),
// tolerating a torn tail: the longest valid prefix whose batches sequence
// contiguously is applied, and the file is truncated to that prefix so the
// next append extends clean state.
func (s *session) recover() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	sc := journal.NewScanner(f)
	valid := int64(0)
	for sc.Scan() {
		batch, err := decodeEvents(sc.Bytes())
		if err != nil || batch.FirstSeq != s.nextSeq {
			// A record that does not decode or does not extend the sequence
			// contiguously is treated like a torn tail: recover the prefix.
			s.replayTruncated = true
			break
		}
		s.applyBatch(batch)
		s.nextSeq = batch.FirstSeq + uint64(len(batch.Events))
		valid = sc.Offset()
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return err
	}
	if sc.Truncated() {
		s.replayTruncated = true
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return err
	}
	s.appliedSeq = s.nextSeq
	s.resumed = s.nextSeq > 0
	s.jf = f
	s.jw = journal.NewWriter(f)
	return nil
}

// applyBatch folds a batch into the collector and dirty sets. Called during
// replay (single-threaded) and by the applier (under mu).
func (s *session) applyBatch(batch eventsMsg) {
	for _, ev := range batch.Events {
		// Events were validated on decode; application errors (unknown kind,
		// missing names) cannot corrupt state, so a bad journaled event is
		// skipped rather than poisoning replay.
		if err := s.col.ApplyEvent(ev); err != nil {
			continue
		}
		s.dirtyTasks[ev.Task] = true
		if ev.File != "" {
			s.dirtyFiles[ev.File] = true
			s.dirtyFlows[[2]string{ev.Task, ev.File}] = true
			tf := s.taskFiles[ev.Task]
			if tf == nil {
				tf = make(map[string]bool)
				s.taskFiles[ev.Task] = tf
			}
			tf[ev.File] = true
			ft := s.fileTasks[ev.File]
			if ft == nil {
				ft = make(map[string]bool)
				s.fileTasks[ev.File] = ft
			}
			ft[ev.Task] = true
		}
	}
}

// runApplier drains the ingest queue, folding batches into the collector and
// syncing the DFL graph whenever the queue goes idle — under backlog the sync
// is deferred, which is the freshness half of the degradation ladder.
func (s *session) runApplier() {
	defer close(s.applierDone)
	for {
		select {
		case batch := <-s.queue:
			s.mu.Lock()
			s.applyBatch(batch)
			s.appliedSeq = batch.FirstSeq + uint64(len(batch.Events))
			if len(s.queue) == 0 {
				s.syncGraphLocked()
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			<-s.slots
		case <-s.quit:
			// Drain what is already queued so a clean shutdown leaves the
			// in-memory state matching the journal.
			for {
				select {
				case batch := <-s.queue:
					s.mu.Lock()
					s.applyBatch(batch)
					s.appliedSeq = batch.FirstSeq + uint64(len(batch.Events))
					s.cond.Broadcast()
					s.mu.Unlock()
					<-s.slots
				default:
					return
				}
			}
		}
	}
}

// syncGraphLocked folds the dirty collector state into the live DFL graph.
// Every dirty vertex is recomputed from scratch from its flows, so the final
// graph is a pure function of collector content — independent of how many
// intermediate syncs happened, which is what makes kill-and-resume output
// byte-identical to an uninterrupted run. Dirty sets are walked in sorted
// order so edge insertion order is deterministic too.
func (s *session) syncGraphLocked() {
	if s.syncedSeq == s.appliedSeq &&
		len(s.dirtyTasks) == 0 && len(s.dirtyFiles) == 0 && len(s.dirtyFlows) == 0 {
		return
	}
	flows := make([][2]string, 0, len(s.dirtyFlows))
	for k := range s.dirtyFlows {
		flows = append(flows, k)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i][0] != flows[j][0] {
			return flows[i][0] < flows[j][0]
		}
		return flows[i][1] < flows[j][1]
	})
	for _, k := range flows {
		s.syncFlow(k[0], k[1])
	}
	for _, task := range sortedKeys(s.dirtyTasks) {
		s.syncTask(task)
	}
	for _, file := range sortedKeys(s.dirtyFiles) {
		s.syncFile(file)
	}
	clear(s.dirtyTasks)
	clear(s.dirtyFiles)
	clear(s.dirtyFlows)
	s.syncedSeq = s.appliedSeq
}

// syncFlow refreshes the producer/consumer edges of one (task, file) flow,
// mirroring dfl.Build's addFlow property derivation exactly.
func (s *session) syncFlow(task, file string) {
	fl := s.col.Flow(task, file, 0)
	tid, did := dfl.TaskID(task), dfl.DataID(file)
	s.g.AddTask(task)
	s.g.AddData(file)
	if fl.ReadOps > 0 {
		p := dfl.FlowProps{
			Ops:           fl.ReadOps,
			Volume:        fl.ReadBytes,
			Footprint:     fl.Footprint(blockstats.Read),
			Latency:       fl.ReadTime,
			MeanDistance:  fl.MeanDistance(),
			ZeroDistFrac:  fl.ZeroDistanceFraction(),
			SmallDistFrac: fl.SmallDistanceFraction(),
		}
		if !s.g.SetEdgeProps(did, tid, p) {
			// Direction is correct by construction; AddEdge cannot fail.
			_, _ = s.g.AddEdge(did, tid, dfl.Consumer, p)
		}
	}
	if fl.WriteOps > 0 {
		p := dfl.FlowProps{
			Ops:           fl.WriteOps,
			Volume:        fl.WriteBytes,
			Footprint:     fl.Footprint(blockstats.Write),
			Latency:       fl.WriteTime,
			MeanDistance:  fl.MeanDistance(),
			ZeroDistFrac:  fl.ZeroDistanceFraction(),
			SmallDistFrac: fl.SmallDistanceFraction(),
		}
		if !s.g.SetEdgeProps(tid, did, p) {
			_, _ = s.g.AddEdge(tid, did, dfl.Producer, p)
		}
	}
}

// syncTask recomputes one task vertex's properties from scratch: lifetime
// from the collector's task info plus per-flow aggregate sums, matching the
// accumulation dfl.Build performs.
func (s *session) syncTask(task string) {
	var p dfl.TaskProps
	if ti := s.col.Task(task); ti != nil {
		p.Lifetime = ti.Lifetime()
	}
	for _, file := range sortedKeys(s.taskFiles[task]) {
		fl := s.col.Flow(task, file, 0)
		p.ReadOps += fl.ReadOps
		p.WriteOps += fl.WriteOps
		p.InVolume += fl.ReadBytes
		p.OutVolume += fl.WriteBytes
		p.ReadLatency += fl.ReadTime
		p.WriteLatency += fl.WriteTime
	}
	s.g.AddTask(task)
	s.g.SetTaskProps(task, p)
}

// syncFile recomputes one data vertex's properties: size and lifetime are
// maxima over the flows touching the file, as in dfl.Build.
func (s *session) syncFile(file string) {
	var p dfl.DataProps
	for _, task := range sortedKeys(s.fileTasks[file]) {
		fl := s.col.Flow(task, file, 0)
		if sz := fl.FileSize(); sz > p.Size {
			p.Size = sz
		}
		if lt := fl.FileLifetime(); lt > p.Lifetime {
			p.Lifetime = lt
		}
	}
	s.g.AddData(file)
	s.g.SetDataProps(file, p)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stop shuts the applier down (draining journaled batches) and closes the
// journal file.
func (s *session) stop() {
	close(s.quit)
	<-s.applierDone
	if s.jf != nil {
		s.jf.Close()
		s.jf = nil
	}
}

// answer runs one query against the session's live graph. MinSeq semantics:
// wait until at least q.MinSeq events are applied (they are all journaled
// already, so this terminates), then sync if the queue is idle. Under
// backlog a query with MinSeq 0 answers immediately from the last synced
// snapshot, marked stale — freshness degrades before ingest does.
func (s *session) answer(q queryMsg) resultMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.appliedSeq < q.MinSeq {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		s.syncGraphLocked()
	}
	res := resultMsg{
		Applied: s.appliedSeq,
		Synced:  s.syncedSeq,
		Stale:   s.syncedSeq < s.appliedSeq,
	}
	body, err := renderQuery(s.g, q)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Body = body
	return res
}

// renderQuery produces the deterministic text answer for one query kind. The
// output is a pure function of graph content (no timestamps, no map order),
// which the kill-and-resume byte-identity gate relies on.
func renderQuery(g *dfl.Graph, q queryMsg) (string, error) {
	top := int(q.Top)
	if top <= 0 {
		top = 10
	}
	switch q.Kind {
	case "summary":
		var b strings.Builder
		fmt.Fprintf(&b, "vertices %d edges %d\n", g.NumVertices(), g.NumEdges())
		fmt.Fprintf(&b, "total volume %d B\n", g.TotalVolume())
		if _, err := g.TopoSort(); err != nil {
			fmt.Fprintf(&b, "topology: %v\n", err)
		} else {
			fmt.Fprintf(&b, "topology: DAG\n")
		}
		fmt.Fprintf(&b, "fingerprint %#016x\n", g.Fingerprint())
		return b.String(), nil
	case "cpa":
		path, err := cpa.CriticalPath(g, cpa.ByVolume, nil)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "critical path (volume): %d vertices, weight %.4g\n",
			len(path.Vertices), path.Weight)
		for i, id := range path.Vertices {
			if i >= top {
				fmt.Fprintf(&b, "  ... %d more\n", len(path.Vertices)-top)
				break
			}
			fmt.Fprintf(&b, "  %2d. %s\n", i+1, id)
		}
		return b.String(), nil
	case "advisor":
		plan, err := advisor.Advise(g, advisor.Config{})
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString(plan.Report(top))
		fmt.Fprintf(&b, "plan locality score: %.0f%% of flow volume becomes node-local\n",
			100*plan.LocalityScore(g))
		return b.String(), nil
	case "patterns":
		path, err := cpa.CriticalPath(g, cpa.ByVolume, nil)
		if err != nil {
			return "", err
		}
		cat := cpa.DFLCaterpillar(g, path)
		opps := patterns.Analyze(g, cat, patterns.Config{})
		return patterns.Report("opportunities on the caterpillar (ranked):", opps, top), nil
	default:
		return "", fmt.Errorf("serve: unknown query kind %q", q.Kind)
	}
}

// sessionPath maps a session name to its journal file.
func sessionPath(dir, name string) string {
	return filepath.Join(dir, name+".journal")
}

// validSessionName restricts session names to a safe filename alphabet.
func validSessionName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
