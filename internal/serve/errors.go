// Package serve implements the datalife streaming service: a long-running
// server that accepts trace-event streams from many concurrent clients over a
// length-prefixed CRC-framed wire protocol, journals every session before
// acknowledging (crash-consistent ingest), feeds per-session collectors and
// incremental DFL indexes, and answers advisor/critical-path/pattern queries
// against live snapshots mid-run.
//
// The robustness layer is the point: admission control with a bounded session
// table and typed rejection, per-session ingest backpressure (bounded queues,
// slow-client deadlines, overload shedding that degrades query freshness
// before dropping ingest), client-side retry with capped exponential backoff,
// idempotent resume via journaled sequence numbers, and kill-and-restore
// recovery that replays journals (tolerating torn tails) and continues
// byte-identically.
package serve

import "fmt"

// SessionKind classifies session-level failures and notable conditions,
// mirroring the sim.FailureKind discipline: a compact enum, sentinel errors
// for errors.Is, and a typed *SessionError carrier.
type SessionKind uint8

const (
	// KindRejected is an admission failure: the session table is full, the
	// session name is already attached to a live connection, or the name is
	// malformed. Not retryable when malformed; capacity rejections are.
	KindRejected SessionKind = iota
	// KindOverloaded is ingest backpressure: the session's bounded queue
	// stayed full past the enqueue deadline, or the journal could not accept
	// the batch. The batch was not journaled or applied; the client backs
	// off and resends.
	KindOverloaded
	// KindDeadline is a slow-client eviction: the connection sat idle past
	// the server's idle deadline. Session state persists; reconnect resumes.
	KindDeadline
	// KindTornStream is a framing or sequencing violation on the wire: a
	// corrupt frame, an oversize length, or a sequence gap the journal
	// cannot reconcile. The connection is dropped; journaled state persists.
	KindTornStream
	// KindResumed is not a failure: it marks a session that recovered prior
	// journaled state (after a server restart or client reconnect).
	KindResumed

	numSessionKinds // sentinel for validation
)

var sessionKindNames = [...]string{
	"rejected", "overloaded", "deadline", "torn-stream", "resumed",
}

func (k SessionKind) String() string {
	if int(k) < len(sessionKindNames) {
		return sessionKindNames[k]
	}
	return fmt.Sprintf("session(%d)", uint8(k))
}

// Retryable reports whether a client should back off and retry after a
// failure of this kind. Torn streams are retryable too: reconnecting
// re-handshakes from the journaled sequence number.
func (k SessionKind) Retryable() bool {
	return k == KindOverloaded || k == KindDeadline || k == KindTornStream
}

// Sentinel errors matching each SessionKind through errors.Is.
var (
	// ErrRejected matches SessionErrors with KindRejected.
	ErrRejected = fmt.Errorf("serve: session rejected")
	// ErrOverloaded matches SessionErrors with KindOverloaded.
	ErrOverloaded = fmt.Errorf("serve: server overloaded")
	// ErrDeadline matches SessionErrors with KindDeadline.
	ErrDeadline = fmt.Errorf("serve: idle deadline exceeded")
	// ErrTornStream matches SessionErrors with KindTornStream.
	ErrTornStream = fmt.Errorf("serve: torn stream")
	// ErrResumed matches SessionErrors with KindResumed.
	ErrResumed = fmt.Errorf("serve: session resumed")
)

// Sentinel returns the errors.Is target for this session kind, or nil for
// kinds without one.
func (k SessionKind) Sentinel() error {
	switch k {
	case KindRejected:
		return ErrRejected
	case KindOverloaded:
		return ErrOverloaded
	case KindDeadline:
		return ErrDeadline
	case KindTornStream:
		return ErrTornStream
	case KindResumed:
		return ErrResumed
	}
	return nil
}

// SessionError is the typed error the serve package reports for session-level
// conditions: which session, at which journaled sequence number, and why.
type SessionError struct {
	// Session is the session name ("" when the failure precedes naming).
	Session string
	// Seq is the durable (journaled) sequence number at the time of the
	// failure — the point an idempotent resume continues from.
	Seq uint64
	// Kind classifies the condition.
	Kind SessionKind
	// Cause is the underlying error, if any.
	Cause error
}

func (e *SessionError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("serve: session %q at seq %d: %s", e.Session, e.Seq, e.Kind)
	}
	return fmt.Sprintf("serve: session %q at seq %d: %s: %v", e.Session, e.Seq, e.Kind, e.Cause)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *SessionError) Unwrap() error { return e.Cause }

// Is matches the sentinel for the error's kind, so
// errors.Is(err, serve.ErrOverloaded) works on errors wrapping a
// *SessionError. Cause-chain matching still happens through Unwrap.
func (e *SessionError) Is(target error) bool {
	s := e.Kind.Sentinel()
	return s != nil && target == s
}
