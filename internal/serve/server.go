package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"datalife/internal/blockstats"
)

// Config shapes a Server's robustness envelope.
type Config struct {
	// Dir is the directory holding per-session journals. Required.
	Dir string
	// MaxSessions bounds the session table; session K+1 is rejected with a
	// typed admission error rather than queued. Default 64.
	MaxSessions int
	// QueueDepth bounds each session's ingest queue (batches). Default 16.
	QueueDepth int
	// EnqueueWait is how long an ingest batch may wait for queue space before
	// the server sheds it with a typed overload rejection (the batch is NOT
	// journaled, so the client's resend is safe). Default 200ms.
	EnqueueWait time.Duration
	// IdleDeadline evicts connections that send nothing for this long; the
	// session's journaled state persists and a reconnect resumes it.
	// Default 30s.
	IdleDeadline time.Duration
	// MaxFrame bounds accepted wire frames. Default DefaultMaxFrame.
	MaxFrame int
	// Trace (blockstats) configuration for per-session collectors.
	Trace blockstats.Config
	// NoSync skips the per-batch fsync — for benchmarks that measure the
	// pipeline rather than the disk. Crash consistency is off with it.
	NoSync bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.EnqueueWait <= 0 {
		c.EnqueueWait = 200 * time.Millisecond
	}
	if c.IdleDeadline <= 0 {
		c.IdleDeadline = 30 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Trace == (blockstats.Config{}) {
		c.Trace = blockstats.DefaultConfig()
	}
	return c
}

// Server accepts trace-event streams, journals them per session before
// acknowledging, and answers analysis queries against live per-session DFL
// graphs. Sessions outlive connections: the journal is the session, a
// connection is just the currently attached writer.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	ln net.Listener
	wg sync.WaitGroup

	// crashAfterJournal, when set (tests only), is consulted after a batch is
	// journaled and fsynced but before it is applied or acknowledged. Returning
	// true kills the connection at the worst possible instant for the client —
	// durable but unacknowledged — which is exactly the window a SIGKILL
	// between fsync and ack exposes.
	crashAfterJournal func(sessionName string, firstSeq uint64) bool
}

// NewServer validates the configuration and creates the journal directory.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, sessions: make(map[string]*session)}, nil
}

// Serve accepts connections on ln until Close. Each connection is handled on
// its own goroutine; Serve returns after the listener fails (which Close
// forces).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, drops live connections, drains appliers, and closes
// all journals. Journaled state persists; a new Server over the same Dir
// resumes every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.stop()
	}
	return nil
}

// attach admits a session under the bounded table: reusing a detached live
// session, recovering a journaled one from disk, or creating a fresh one.
// Typed *SessionError (KindRejected) on malformed names, duplicate live
// attachment, or a full table.
func (s *Server) attach(name string) (*session, error) {
	if !validSessionName(name) {
		return nil, &SessionError{Session: name, Kind: KindRejected,
			Cause: fmt.Errorf("invalid session name")}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &SessionError{Session: name, Kind: KindRejected,
			Cause: fmt.Errorf("server closed")}
	}
	if sess := s.sessions[name]; sess != nil {
		if sess.attached {
			return nil, &SessionError{Session: name, Kind: KindRejected,
				Cause: fmt.Errorf("session already attached")}
		}
		sess.attached = true
		return sess, nil
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, &SessionError{Session: name, Kind: KindRejected,
			Cause: fmt.Errorf("session table full (%d)", s.cfg.MaxSessions)}
	}
	sess, err := newSession(name, sessionPath(s.cfg.Dir, name), s.cfg.Trace, s.cfg.QueueDepth)
	if err != nil {
		return nil, &SessionError{Session: name, Kind: KindRejected, Cause: err}
	}
	// Replay any journal left by a previous server process (lazy, per-attach:
	// recovery cost is paid by the resuming session, not at startup).
	if err := sess.recover(); err != nil {
		return nil, &SessionError{Session: name, Kind: KindRejected, Cause: err}
	}
	sess.attached = true
	s.sessions[name] = sess
	go sess.runApplier()
	return sess, nil
}

// detach releases the connection's claim on the session. The session (and its
// applier) stays live for reconnects; evict is the path that tears it down.
func (s *Server) detach(sess *session) {
	s.mu.Lock()
	sess.attached = false
	s.mu.Unlock()
}

// evict removes a session from the table and tears it down (applier drained,
// journal closed). Its durable state remains on disk; the next attach of the
// same name replays it. Used for deadline evictions and torn streams, so a
// misbehaving client frees its table slot instead of pinning it.
func (s *Server) evict(sess *session) {
	s.mu.Lock()
	if s.sessions[sess.name] == sess {
		delete(s.sessions, sess.name)
	}
	s.mu.Unlock()
	sess.stop()
}

// SessionNames reports the attached-or-live session names, for observability.
func (s *Server) SessionNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sessions))
	for n := range s.sessions {
		names = append(names, n)
	}
	return names
}

// handle runs one connection: hello/welcome handshake, then an ingest+query
// loop with idle deadlines. Protocol errors answer with a typed reject frame
// when possible, then drop the connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Handshake under the idle deadline too: a silent dialer must not pin a
	// handler goroutine forever.
	setDeadline(conn, s.cfg.IdleDeadline)
	payload, err := readFrame(br, s.cfg.MaxFrame)
	if err != nil {
		return
	}
	msg, err := decodeMessage(payload)
	if err != nil {
		writeReject(conn, rejectMsg{Kind: KindTornStream, Detail: err.Error()})
		return
	}
	hello, ok := msg.(helloMsg)
	if !ok {
		writeReject(conn, rejectMsg{Kind: KindTornStream, Detail: "expected hello"})
		return
	}
	if hello.Version != ProtoVersion {
		writeReject(conn, rejectMsg{Kind: KindRejected,
			Detail: fmt.Sprintf("protocol version %d, want %d", hello.Version, ProtoVersion)})
		return
	}
	sess, err := s.attach(hello.Session)
	if err != nil {
		var se *SessionError
		retryable := false
		if errors.As(err, &se) {
			retryable = se.Kind.Retryable()
		}
		// Capacity rejections clear once another session detaches or is
		// evicted, so the client may retry those.
		if se != nil && se.Kind == KindRejected &&
			se.Cause != nil && se.Cause.Error() == fmt.Sprintf("session table full (%d)", s.cfg.MaxSessions) {
			retryable = true
		}
		writeReject(conn, rejectMsg{Kind: KindRejected, Retryable: retryable, Detail: err.Error()})
		return
	}
	defer s.detach(sess)
	if err := writeFrame(conn, encodeWelcome(welcomeMsg{
		NextSeq: sess.nextSeq, Resumed: sess.resumed,
	})); err != nil {
		return
	}

	for {
		setDeadline(conn, s.cfg.IdleDeadline)
		payload, err := readFrame(br, s.cfg.MaxFrame)
		if err != nil {
			if isTimeout(err) {
				// Slow-client eviction: free the table slot; journaled state
				// persists and a reconnect resumes the session.
				writeReject(conn, rejectMsg{Kind: KindDeadline, Retryable: true,
					Seq: sess.nextSeq, Detail: "idle deadline exceeded"})
				s.evict(sess)
				return
			}
			if err != io.EOF {
				s.evict(sess)
			}
			return
		}
		msg, err := decodeMessage(payload)
		if err != nil {
			writeReject(conn, rejectMsg{Kind: KindTornStream, Retryable: true,
				Seq: sess.nextSeq, Detail: err.Error()})
			s.evict(sess)
			return
		}
		switch m := msg.(type) {
		case eventsMsg:
			ok, err := s.ingest(conn, sess, m)
			if err != nil || !ok {
				return
			}
		case queryMsg:
			// Clamp MinSeq to what is durable: waiting for events the journal
			// has never seen would block forever.
			if m.MinSeq > sess.nextSeq {
				m.MinSeq = sess.nextSeq
			}
			res := sess.answer(m)
			if err := writeFrame(conn, encodeResult(res)); err != nil {
				return
			}
		case byeMsg:
			return
		default:
			writeReject(conn, rejectMsg{Kind: KindTornStream, Retryable: true,
				Seq: sess.nextSeq, Detail: "unexpected message"})
			s.evict(sess)
			return
		}
	}
}

// ingest runs one batch through the durability pipeline:
//
//	dedup suffix → reserve queue slot → journal append + fsync → advance
//	nextSeq → enqueue (guaranteed room) → ack
//
// The order is the crash-consistency contract: nothing is acknowledged before
// it is durable, and nothing is applied that was not journaled — so a client
// resend after any failure is deduplicated by sequence number, never
// double-applied. Returns ok=false when the connection must drop (the session
// may have been evicted).
func (s *Server) ingest(conn net.Conn, sess *session, m eventsMsg) (ok bool, err error) {
	end := m.FirstSeq + uint64(len(m.Events))
	switch {
	case m.FirstSeq > sess.nextSeq:
		// Gap: the client skipped ahead of the journal. Unrecoverable on this
		// connection; reconnecting re-handshakes from the durable seq.
		writeReject(conn, rejectMsg{Kind: KindTornStream, Retryable: true,
			Seq: sess.nextSeq,
			Detail: fmt.Sprintf("sequence gap: batch starts at %d, journal at %d",
				m.FirstSeq, sess.nextSeq)})
		s.evict(sess)
		return false, nil
	case end <= sess.nextSeq:
		// Pure duplicate (resend of an acknowledged batch): re-ack.
		return true, writeFrame(conn, encodeAck(ackMsg{Durable: sess.nextSeq}))
	case m.FirstSeq < sess.nextSeq:
		// Overlap: journal and apply only the unseen suffix.
		m.Events = m.Events[sess.nextSeq-m.FirstSeq:]
		m.FirstSeq = sess.nextSeq
	}

	// Reserve the queue slot BEFORE journaling: if the applier is backed up
	// past the deadline, shed the batch with a typed overload rejection while
	// it is still safe for the client to resend (nothing durable happened).
	if !reserveSlot(sess.slots, s.cfg.EnqueueWait) {
		serr := &SessionError{Session: sess.name, Seq: sess.nextSeq, Kind: KindOverloaded,
			Cause: fmt.Errorf("ingest queue full past %v", s.cfg.EnqueueWait)}
		// Overload is transient: keep the connection, let the client back off.
		return true, writeFrame(conn, encodeReject(rejectMsg{
			Kind: KindOverloaded, Retryable: true, Seq: sess.nextSeq, Detail: serr.Error()}))
	}

	if err := sess.jw.Append(encodeEvents(m)); err != nil {
		<-sess.slots
		s.evict(sess)
		return false, err
	}
	if !s.cfg.NoSync {
		if err := sess.jf.Sync(); err != nil {
			<-sess.slots
			s.evict(sess)
			return false, err
		}
	}
	sess.nextSeq = end

	if hook := s.crashAfterJournal; hook != nil && hook(sess.name, m.FirstSeq) {
		// Simulated SIGKILL in the durable-but-unacknowledged window: the
		// batch reached disk but not the in-memory state, so the session must
		// be torn down and recovered from its journal like a killed process.
		<-sess.slots
		conn.Close()
		s.evict(sess)
		return false, nil
	}

	sess.queue <- m // cannot block: slot reserved above
	return true, writeFrame(conn, encodeAck(ackMsg{Durable: sess.nextSeq}))
}

func writeReject(conn net.Conn, rej rejectMsg) {
	_ = writeFrame(conn, encodeReject(rej))
}

// setDeadline applies the idle deadline to the connection. Wall-clock use is
// inherent: deadlines are how a server sheds silent peers.
//
//dflvet:allow walltime connection idle deadlines are wall-clock by definition
func setDeadline(conn net.Conn, d time.Duration) {
	_ = conn.SetDeadline(time.Now().Add(d))
}

// reserveSlot acquires an ingest queue slot, giving up after wait. The
// backpressure deadline bounds how long a client blocks on a congested
// server, which is inherently a real-time contract.
//
//dflvet:allow walltime ingest backpressure deadlines are wall-clock by definition
func reserveSlot(slots chan struct{}, wait time.Duration) bool {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case slots <- struct{}{}:
		return true
	case <-timer.C:
		return false
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
