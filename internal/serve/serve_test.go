package serve

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"datalife/internal/dfl"
	"datalife/internal/iotrace"
)

// startServer launches a server on a loopback listener and returns it with
// its address. The caller owns Close.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func testClientConfig(addr, session string) ClientConfig {
	return ClientConfig{
		Addr: addr, Session: session,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}
}

// sendInBatches streams events in fixed-size batches through the durable
// Send path.
func sendInBatches(t *testing.T, c *Client, events []iotrace.TraceEvent, batch int) {
	t.Helper()
	for i := 0; i < len(events); i += batch {
		j := i + batch
		if j > len(events) {
			j = len(events)
		}
		if err := c.Send(events[i:j]); err != nil {
			t.Fatalf("Send batch at %d: %v", i, err)
		}
	}
}

// finalAnswers issues every query kind with MinSeq pinned to the stream
// length, returning kind → body. This is the deterministic "final answer"
// the kill-and-resume gate hashes.
func finalAnswers(t *testing.T, c *Client, minSeq uint64) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, kind := range []string{"summary", "cpa", "advisor", "patterns"} {
		res, err := c.Query(kind, 10, minSeq)
		if err != nil {
			t.Fatalf("query %s: %v", kind, err)
		}
		if res.Stale {
			t.Fatalf("query %s with MinSeq %d answered stale", kind, minSeq)
		}
		out[kind] = res.Body
	}
	return out
}

func answersDigest(answers map[string]string) [32]byte {
	h := sha256.New()
	for _, kind := range []string{"summary", "cpa", "advisor", "patterns"} {
		h.Write([]byte(kind))
		h.Write([]byte{0})
		h.Write([]byte(answers[kind]))
		h.Write([]byte{0})
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestSessionErrorKinds pins the typed-error surface: kind names,
// retryability, sentinel matching through errors.Is on wrapped chains, and
// errors.As extraction — the same discipline sim.TaskError established.
func TestSessionErrorKinds(t *testing.T) {
	cases := []struct {
		kind      SessionKind
		name      string
		sentinel  error
		retryable bool
	}{
		{KindRejected, "rejected", ErrRejected, false},
		{KindOverloaded, "overloaded", ErrOverloaded, true},
		{KindDeadline, "deadline", ErrDeadline, true},
		{KindTornStream, "torn-stream", ErrTornStream, true},
		{KindResumed, "resumed", ErrResumed, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.kind.String(); got != tc.name {
				t.Errorf("String() = %q, want %q", got, tc.name)
			}
			if got := tc.kind.Retryable(); got != tc.retryable {
				t.Errorf("Retryable() = %v, want %v", got, tc.retryable)
			}
			serr := &SessionError{Session: "s", Seq: 7, Kind: tc.kind,
				Cause: fmt.Errorf("boom")}
			wrapped := fmt.Errorf("outer: %w", serr)
			if !errors.Is(wrapped, tc.sentinel) {
				t.Errorf("errors.Is(wrapped, %v) = false", tc.sentinel)
			}
			for _, other := range cases {
				if other.kind != tc.kind && errors.Is(wrapped, other.sentinel) {
					t.Errorf("errors.Is matched wrong sentinel %v", other.sentinel)
				}
			}
			var got *SessionError
			if !errors.As(wrapped, &got) || got.Kind != tc.kind || got.Seq != 7 {
				t.Errorf("errors.As = %+v", got)
			}
			if got.Error() == "" || got.Unwrap() == nil {
				t.Errorf("Error/Unwrap incomplete: %q", got.Error())
			}
		})
	}
	if int(numSessionKinds) != len(sessionKindNames) {
		t.Fatalf("kind/name table out of sync: %d kinds, %d names",
			numSessionKinds, len(sessionKindNames))
	}
}

// TestAdmissionRejection exercises the bounded session table: session K+1
// gets a typed rejection, not a hang, and a malformed name is rejected
// outright.
func TestAdmissionRejection(t *testing.T) {
	_, addr := startServer(t, Config{Dir: t.TempDir(), MaxSessions: 2})

	var clients []*Client
	for i := 0; i < 2; i++ {
		c, err := Dial(testClientConfig(addr, fmt.Sprintf("sess%d", i)))
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		clients = append(clients, c)
	}

	cfg := testClientConfig(addr, "sess2")
	cfg.MaxAttempts = 2
	if _, err := Dial(cfg); !errors.Is(err, ErrRejected) {
		t.Fatalf("session K+1: got %v, want ErrRejected", err)
	}

	// Duplicate attachment of a live session is rejected too.
	dup := testClientConfig(addr, "sess0")
	dup.MaxAttempts = 2
	if _, err := Dial(dup); !errors.Is(err, ErrRejected) {
		t.Fatalf("duplicate attach: got %v, want ErrRejected", err)
	}

	bad := testClientConfig(addr, "no/slashes")
	bad.MaxAttempts = 1
	if _, err := Dial(bad); !errors.Is(err, ErrRejected) {
		t.Fatalf("malformed name: got %v, want ErrRejected", err)
	}

	// Detaching does NOT free the table slot — the session (and its journal)
	// stays live for resume, so a new name is still rejected but the old name
	// reattaches without consuming a new slot.
	clients[0].Close()
	waitFor(t, time.Second, func() bool {
		re, err := Dial(ClientConfig{Addr: addr, Session: "sess0",
			BaseBackoff: 5 * time.Millisecond, MaxAttempts: 3})
		if err != nil {
			return false
		}
		re.Close()
		return true
	})
	if _, err := Dial(cfg); !errors.Is(err, ErrRejected) {
		t.Fatalf("new session after detach: got %v, want ErrRejected", err)
	}
}

// TestSlowClientDeadlineEviction pins the eviction path: a client that goes
// silent past the idle deadline loses its connection and table slot, while a
// concurrent healthy session streams unharmed; the evicted session's state
// survives on disk and its reconnect resumes idempotently.
func TestSlowClientDeadlineEviction(t *testing.T) {
	srv, addr := startServer(t, Config{
		Dir: t.TempDir(), IdleDeadline: 150 * time.Millisecond,
	})

	events := ChainEvents(40)
	half := len(events) / 2

	slow, err := Dial(testClientConfig(addr, "slow"))
	if err != nil {
		t.Fatalf("dial slow: %v", err)
	}
	defer slow.Close()
	sendInBatches(t, slow, events[:half], 16)

	// Healthy client streams through the other session's silence.
	fast, err := Dial(testClientConfig(addr, "fast"))
	if err != nil {
		t.Fatalf("dial fast: %v", err)
	}
	defer fast.Close()
	sendInBatches(t, fast, events, 16)
	fastAnswers := finalAnswers(t, fast, uint64(len(events)))

	// Let the idle deadline evict the slow session (its table slot frees).
	waitFor(t, 5*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.sessions["slow"] == nil
	})

	// The evicted client's next Send hits a dead connection, reconnects, and
	// resumes from the journaled frontier — completing the identical stream.
	sendInBatches(t, slow, events[half:], 16)
	slowAnswers := finalAnswers(t, slow, uint64(len(events)))

	if answersDigest(slowAnswers) != answersDigest(fastAnswers) {
		t.Fatalf("evicted-and-resumed session answers differ from healthy session\nslow summary:\n%s\nfast summary:\n%s",
			slowAnswers["summary"], fastAnswers["summary"])
	}
}

// TestOverloadSheddingRejectsTyped pins backpressure: with a tiny queue, a
// stalled applier, and a short enqueue deadline, ingest sheds batches with a
// typed retryable overload instead of blocking — and nothing shed is
// journaled, so the eventual retry is not a duplicate.
func TestOverloadSheddingRejectsTyped(t *testing.T) {
	srv, addr := startServer(t, Config{
		Dir: t.TempDir(), QueueDepth: 1, EnqueueWait: 30 * time.Millisecond,
	})

	c, err := Dial(testClientConfig(addr, "busy"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	events := ChainEvents(8)
	if err := c.Send(events[:4]); err != nil {
		t.Fatalf("warmup send: %v", err)
	}

	// Stall the applier by holding the session lock, then fill the queue.
	srv.mu.Lock()
	sess := srv.sessions["busy"]
	srv.mu.Unlock()
	if sess == nil {
		t.Fatal("session missing")
	}
	sess.mu.Lock()
	stalled := true
	defer func() {
		if stalled {
			sess.mu.Unlock()
		}
	}()

	// One batch occupies the queue slot; the next must shed with a typed
	// overload. Raw frames (not Client.Send) so retries don't mask the reject.
	first := c.NextSeq()
	if err := writeFrame(c.conn, encodeEvents(eventsMsg{FirstSeq: first, Events: events[4:6]})); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	if _, err := c.readReply(); err != nil {
		t.Fatalf("fill ack: %v", err)
	}
	if err := writeFrame(c.conn, encodeEvents(eventsMsg{FirstSeq: first + 2, Events: events[6:8]})); err != nil {
		t.Fatalf("overflow send: %v", err)
	}
	reply, err := c.readReply()
	if err != nil {
		t.Fatalf("overflow reply: %v", err)
	}
	rej, ok := reply.(rejectMsg)
	if !ok {
		t.Fatalf("overflow reply = %T, want rejectMsg", reply)
	}
	if rej.Kind != KindOverloaded || !rej.Retryable {
		t.Fatalf("overflow reject = %+v, want retryable overloaded", rej)
	}
	if err := rejectError("busy", rej); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("reject error %v does not match ErrOverloaded", err)
	}

	// Release the applier; the shed batch retries cleanly through Send.
	stalled = false
	sess.mu.Unlock()
	c.nextSeq = first + 2 // the filled batch was acked durable at first+2
	if err := c.Send(events[6:8]); err != nil {
		t.Fatalf("post-overload resend: %v", err)
	}
	if _, err := c.Query("summary", 5, c.NextSeq()); err != nil {
		t.Fatalf("post-overload query: %v", err)
	}
}

// TestTornTailReplay pins crash recovery at the journal layer: a journal with
// a mid-record torn tail (and trailing garbage) replays its longest valid
// prefix, the file is truncated to that prefix, and the resumed session
// continues to the same final state as an untorn run.
func TestTornTailReplay(t *testing.T) {
	dir := t.TempDir()
	events := ChainEvents(30)
	cut := uint64(16)

	// Reference run: stream everything uninterrupted.
	_, refAddr := startServer(t, Config{Dir: t.TempDir()})
	ref, err := Dial(testClientConfig(refAddr, "w"))
	if err != nil {
		t.Fatalf("dial ref: %v", err)
	}
	defer ref.Close()
	sendInBatches(t, ref, events, 8)
	want := finalAnswers(t, ref, uint64(len(events)))

	// Victim run: stream a prefix, stop the server cleanly, then mangle the
	// journal tail like a crash mid-append would.
	srv1, addr1 := startServer(t, Config{Dir: dir})
	c1, err := Dial(testClientConfig(addr1, "w"))
	if err != nil {
		t.Fatalf("dial victim: %v", err)
	}
	sendInBatches(t, c1, events[:cut], 8)
	c1.Close()
	srv1.Close()

	path := sessionPath(dir, "w")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if len(full) < 8 {
		t.Fatalf("journal suspiciously small: %d bytes", len(full))
	}
	// Tear mid-record: chop the last 5 bytes, then append garbage that can
	// never frame correctly.
	torn := append(append([]byte{}, full[:len(full)-5]...), 0xde, 0xad, 0xbe, 0xef)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatalf("write torn journal: %v", err)
	}

	// Restart over the torn journal: recovery must land on a batch boundary
	// strictly before the cut, flag truncation, and keep serving.
	srv2, addr2 := startServer(t, Config{Dir: dir})
	c2, err := Dial(testClientConfig(addr2, "w"))
	if err != nil {
		t.Fatalf("dial resumed: %v", err)
	}
	defer c2.Close()
	if !c2.Resumed {
		t.Fatal("resumed client not flagged Resumed")
	}
	if got := c2.NextSeq(); got == 0 || got >= cut {
		t.Fatalf("resume point %d, want in (0, %d)", got, cut)
	}
	srv2.mu.Lock()
	sess := srv2.sessions["w"]
	srv2.mu.Unlock()
	if sess == nil || !sess.replayTruncated {
		t.Fatal("torn tail not flagged by replay")
	}

	// The client resends from the recovered frontier; the server dedups any
	// overlap and the final answers match the untorn reference run.
	sendInBatches(t, c2, events[c2.NextSeq():], 8)
	got := finalAnswers(t, c2, uint64(len(events)))
	if answersDigest(got) != answersDigest(want) {
		t.Fatalf("torn-tail run diverged\ngot summary:\n%s\nwant summary:\n%s",
			got["summary"], want["summary"])
	}
}

// TestCrashResumeByteIdentical is the kill-and-resume gate in-process: a
// simulated SIGKILL in the durable-but-unacknowledged window (after
// journal+fsync, before apply/ack) plus a full server restart mid-stream, and
// the final advisor/CPA/pattern/summary answers must be byte-identical to an
// uninterrupted run.
func TestCrashResumeByteIdentical(t *testing.T) {
	events := ChainEvents(60)
	total := uint64(len(events))

	// Uninterrupted reference.
	_, refAddr := startServer(t, Config{Dir: t.TempDir()})
	ref, err := Dial(testClientConfig(refAddr, "w"))
	if err != nil {
		t.Fatalf("dial ref: %v", err)
	}
	defer ref.Close()
	sendInBatches(t, ref, events, 16)
	want := finalAnswers(t, ref, total)

	// Interrupted run: crash hook kills the connection once mid-stream, then
	// a full server restart over the same journals.
	dir := t.TempDir()
	srv1, addr1 := startServer(t, Config{Dir: dir})
	fired := false
	srv1.crashAfterJournal = func(name string, firstSeq uint64) bool {
		if !fired && firstSeq >= total/3 {
			fired = true
			return true
		}
		return false
	}
	c1, err := Dial(testClientConfig(addr1, "w"))
	if err != nil {
		t.Fatalf("dial victim: %v", err)
	}
	// Stream the first two thirds; Send's retry loop rides through the
	// simulated crash (reconnect → resume → dedup resend).
	twoThirds := (len(events) * 2 / 3 / 16) * 16
	sendInBatches(t, c1, events[:twoThirds], 16)
	if !fired {
		t.Fatal("crash hook never fired")
	}
	c1.Close()
	srv1.Close()

	// Restart: a new server process over the same directory, new client
	// attach replays the journal lazily.
	_, addr2 := startServer(t, Config{Dir: dir})
	c2, err := Dial(testClientConfig(addr2, "w"))
	if err != nil {
		t.Fatalf("dial resumed: %v", err)
	}
	defer c2.Close()
	if !c2.Resumed {
		t.Fatal("restart resume not flagged")
	}
	if c2.NextSeq() != uint64(twoThirds) {
		t.Fatalf("resume point %d, want %d", c2.NextSeq(), twoThirds)
	}
	sendInBatches(t, c2, events[twoThirds:], 16)
	got := finalAnswers(t, c2, total)

	if answersDigest(got) != answersDigest(want) {
		for _, kind := range []string{"summary", "cpa", "advisor", "patterns"} {
			if got[kind] != want[kind] {
				t.Errorf("%s diverged:\ngot:\n%s\nwant:\n%s", kind, got[kind], want[kind])
			}
		}
		t.Fatal("kill-and-resume answers not byte-identical")
	}
}

// TestTwoClientsIdenticalFingerprints streams the same workflow through two
// concurrent sessions and requires identical content fingerprints — the live
// per-session graphs are pure functions of stream content, not arrival
// interleaving.
func TestTwoClientsIdenticalFingerprints(t *testing.T) {
	srv, addr := startServer(t, Config{Dir: t.TempDir()})
	events := ChainEvents(50)

	done := make(chan error, 2)
	for _, name := range []string{"alpha", "beta"} {
		name := name
		go func() {
			c, err := Dial(testClientConfig(addr, name))
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for i := 0; i < len(events); i += 7 {
				j := i + 7
				if j > len(events) {
					j = len(events)
				}
				if err := c.Send(events[i:j]); err != nil {
					done <- err
					return
				}
			}
			if _, err := c.Query("summary", 5, uint64(len(events))); err != nil {
				done <- err
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("client: %v", err)
		}
	}

	srv.mu.Lock()
	a, b := srv.sessions["alpha"], srv.sessions["beta"]
	srv.mu.Unlock()
	if a == nil || b == nil {
		t.Fatal("sessions missing")
	}
	fa := sessionFingerprint(a)
	fb := sessionFingerprint(b)
	if fa != fb {
		t.Fatalf("fingerprints differ: %#x vs %#x", fa, fb)
	}

	// The live incrementally-synced graph must be indistinguishable (by
	// content hash) from a batch dfl.Build over the same collector.
	a.mu.Lock()
	batch := dfl.Build(a.col)
	live := a.g.Fingerprint()
	a.mu.Unlock()
	if bf := batch.Fingerprint(); bf != live {
		t.Fatalf("live graph fingerprint %#x != batch build %#x", live, bf)
	}
}

func sessionFingerprint(s *session) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncGraphLocked()
	return s.g.Fingerprint()
}

// TestServerCloseIsClean pins shutdown: Close drains appliers and closes
// journals so an immediate restart resumes every session.
func TestServerCloseIsClean(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, Config{Dir: dir})
	c, err := Dial(testClientConfig(addr, "s"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	events := ChainEvents(10)
	sendInBatches(t, c, events, 4)
	c.Close()
	srv.Close()

	_, addr2 := startServer(t, Config{Dir: dir})
	c2, err := Dial(testClientConfig(addr2, "s"))
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c2.Close()
	if !c2.Resumed || c2.NextSeq() != uint64(len(events)) {
		t.Fatalf("resume: Resumed=%v NextSeq=%d want %d", c2.Resumed, c2.NextSeq(), len(events))
	}
	if _, err := c2.Query("summary", 5, uint64(len(events))); err != nil {
		t.Fatalf("query after restart: %v", err)
	}
}

// TestJournalFilesAreNamespaced guards against session names escaping the
// journal directory.
func TestJournalFilesAreNamespaced(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, Config{Dir: dir})
	c, err := Dial(testClientConfig(addr, "ok-name_1.x"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(ChainEvents(2)); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ok-name_1.x.journal")); err != nil {
		t.Fatalf("journal file: %v", err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
