package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"datalife/internal/iotrace"
)

// Wire format: every message travels in a frame using the journal package's
// record layout — uvarint payload length, 4-byte little-endian CRC-32 (IEEE)
// of the payload, payload bytes. The journal silently truncates at the first
// bad record (torn tails are expected on crash); the wire decoder instead
// returns typed errors, because mid-stream corruption on a live connection is
// a protocol violation, not an expected crash artifact.
//
// Inside a frame, payload[0] is the message type; integers are uvarints
// (int64 fields zigzag-encoded), floats are 8-byte little-endian IEEE 754
// bits, and strings are uvarint length + bytes with the claimed length
// validated against the remaining payload before any allocation.
const (
	// ProtoVersion is the wire protocol version exchanged in the handshake.
	ProtoVersion = 1
	// DefaultMaxFrame bounds a single frame's payload. Large enough for any
	// sane event batch, small enough that a hostile length prefix cannot
	// make the decoder allocate without bound.
	DefaultMaxFrame = 8 << 20
	// maxName bounds session, task, and file name lengths on the wire.
	maxName = 4096
	// maxRep bounds the repeat count of a chunk-batch event.
	maxRep = math.MaxInt32
)

type msgType byte

const (
	msgHello msgType = 1 + iota
	msgWelcome
	msgReject
	msgEvents
	msgAck
	msgQuery
	msgResult
	msgBye
)

type helloMsg struct {
	Version uint64
	Session string
}

type welcomeMsg struct {
	// NextSeq is the first event sequence number the server has not yet
	// journaled: the client drops everything before it and resumes there.
	NextSeq uint64
	Resumed bool
}

type rejectMsg struct {
	Kind      SessionKind
	Retryable bool
	Seq       uint64
	Detail    string
}

type eventsMsg struct {
	// FirstSeq is the sequence number of Events[0]; the batch covers
	// [FirstSeq, FirstSeq+len(Events)).
	FirstSeq uint64
	Events   []iotrace.TraceEvent
}

type ackMsg struct {
	// Durable is the next sequence number after everything journaled and
	// fsynced: the client may discard all events below it.
	Durable uint64
}

type queryMsg struct {
	Kind string
	Top  uint64
	// MinSeq asks the server to apply and sync at least this many events
	// before answering: final queries pass the stream length for a fully
	// fresh, deterministic answer; monitoring queries pass 0 and accept a
	// stale snapshot under backlog.
	MinSeq uint64
}

type byeMsg struct{}

type resultMsg struct {
	// Applied is the next sequence number after everything applied to the
	// collector; Synced the one after everything reflected in the DFL graph.
	Applied uint64
	Synced  uint64
	// Stale marks answers served from a snapshot behind the applied state
	// (the overload degradation ladder trades freshness for ingest).
	Stale bool
	Err   string
	Body  string
}

// frame I/O ----------------------------------------------------------------

var crcTable = crc32.IEEETable

// writeFrame writes one frame (length, CRC, payload) in a single Write.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.Checksum(payload, crcTable))
	buf := make([]byte, 0, n+4+len(payload))
	buf = append(buf, hdr[:n+4]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame and verifies its CRC. Returns io.EOF only at a
// clean frame boundary; every other failure is a typed decode error.
func readFrame(r *bufio.Reader, maxFrame int) ([]byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("serve: bad frame length: %w", err)
	}
	if size > uint64(maxFrame) {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", size, maxFrame)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("serve: truncated frame header: %w", err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("serve: truncated frame payload: %w", err)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("serve: frame CRC mismatch")
	}
	return payload, nil
}

// encoding ------------------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendF64(b []byte, v float64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(b, buf[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendEvent(b []byte, ev iotrace.TraceEvent) []byte {
	b = append(b, byte(ev.Kind))
	b = appendString(b, ev.Task)
	b = appendString(b, ev.File)
	b = appendVarint(b, ev.FileSize)
	b = appendVarint(b, ev.Off)
	b = appendVarint(b, ev.Len)
	b = appendVarint(b, ev.Chunk)
	b = appendUvarint(b, uint64(ev.Rep))
	b = appendF64(b, ev.T)
	return appendF64(b, ev.Dt)
}

func encodeHello(m helloMsg) []byte {
	b := []byte{byte(msgHello)}
	b = appendUvarint(b, m.Version)
	return appendString(b, m.Session)
}

func encodeWelcome(m welcomeMsg) []byte {
	b := []byte{byte(msgWelcome)}
	b = appendUvarint(b, m.NextSeq)
	return append(b, boolByte(m.Resumed))
}

func encodeReject(m rejectMsg) []byte {
	b := []byte{byte(msgReject), byte(m.Kind), boolByte(m.Retryable)}
	b = appendUvarint(b, m.Seq)
	return appendString(b, m.Detail)
}

func encodeEvents(m eventsMsg) []byte {
	b := []byte{byte(msgEvents)}
	b = appendUvarint(b, m.FirstSeq)
	b = appendUvarint(b, uint64(len(m.Events)))
	for _, ev := range m.Events {
		b = appendEvent(b, ev)
	}
	return b
}

func encodeAck(m ackMsg) []byte {
	b := []byte{byte(msgAck)}
	return appendUvarint(b, m.Durable)
}

func encodeQuery(m queryMsg) []byte {
	b := []byte{byte(msgQuery)}
	b = appendString(b, m.Kind)
	b = appendUvarint(b, m.Top)
	return appendUvarint(b, m.MinSeq)
}

func encodeResult(m resultMsg) []byte {
	b := []byte{byte(msgResult)}
	b = appendUvarint(b, m.Applied)
	b = appendUvarint(b, m.Synced)
	b = append(b, boolByte(m.Stale))
	b = appendString(b, m.Err)
	return appendString(b, m.Body)
}

func encodeBye() []byte { return []byte{byte(msgBye)} }

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// decoding ------------------------------------------------------------------

// decoder walks a frame payload with bounds-checked reads; the first failure
// latches and every subsequent read returns zero values.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("serve: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail("truncated message")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) str(maxLen int) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(maxLen) {
		d.fail("string of %d bytes exceeds limit %d", n, maxLen)
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) event() iotrace.TraceEvent {
	var ev iotrace.TraceEvent
	ev.Kind = iotrace.EventKind(d.byte())
	ev.Task = d.str(maxName)
	ev.File = d.str(maxName)
	ev.FileSize = d.varint()
	ev.Off = d.varint()
	ev.Len = d.varint()
	ev.Chunk = d.varint()
	rep := d.uvarint()
	if rep > maxRep {
		d.fail("event repeat count %d exceeds limit %d", rep, uint64(maxRep))
	}
	ev.Rep = int(rep)
	ev.T = d.f64()
	ev.Dt = d.f64()
	return ev
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("serve: %d trailing bytes after message", len(d.b))
	}
	return nil
}

// decodeMessage decodes one frame payload into its typed message. It never
// panics: every length is validated against the remaining bytes before any
// allocation, so a hostile frame cannot over-allocate.
func decodeMessage(payload []byte) (any, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("serve: empty message")
	}
	d := &decoder{b: payload[1:]}
	switch t := msgType(payload[0]); t {
	case msgHello:
		m := helloMsg{Version: d.uvarint(), Session: d.str(maxName)}
		return m, d.done()
	case msgWelcome:
		m := welcomeMsg{NextSeq: d.uvarint(), Resumed: d.bool()}
		return m, d.done()
	case msgReject:
		m := rejectMsg{Kind: SessionKind(d.byte()), Retryable: d.bool()}
		m.Seq = d.uvarint()
		m.Detail = d.str(maxName)
		if d.err == nil && m.Kind >= numSessionKinds {
			d.fail("unknown rejection kind %d", uint8(m.Kind))
		}
		return m, d.done()
	case msgEvents:
		m := eventsMsg{FirstSeq: d.uvarint()}
		count := d.uvarint()
		// Every encoded event occupies at least 12 bytes (kind, four
		// varints, two uvarint string lengths ≥ 1 byte each would be 7, plus
		// two 8-byte floats — conservatively 12), so a claimed count larger
		// than remaining/12 is hostile; reject before allocating.
		if d.err == nil && count > uint64(len(d.b)/12+1) {
			d.fail("event count %d exceeds payload capacity", count)
		}
		if d.err == nil && count > 0 {
			m.Events = make([]iotrace.TraceEvent, 0, count)
			for i := uint64(0); i < count && d.err == nil; i++ {
				m.Events = append(m.Events, d.event())
			}
		}
		return m, d.done()
	case msgAck:
		m := ackMsg{Durable: d.uvarint()}
		return m, d.done()
	case msgQuery:
		m := queryMsg{Kind: d.str(maxName), Top: d.uvarint(), MinSeq: d.uvarint()}
		return m, d.done()
	case msgResult:
		m := resultMsg{Applied: d.uvarint(), Synced: d.uvarint(), Stale: d.bool()}
		m.Err = d.str(DefaultMaxFrame)
		m.Body = d.str(DefaultMaxFrame)
		return m, d.done()
	case msgBye:
		return byeMsg{}, d.done()
	default:
		return nil, fmt.Errorf("serve: unknown message type %d", payload[0])
	}
}

// decodeEvents is the journal-replay entry point: it decodes a frame payload
// that must be an event batch.
func decodeEvents(payload []byte) (eventsMsg, error) {
	m, err := decodeMessage(payload)
	if err != nil {
		return eventsMsg{}, err
	}
	ev, ok := m.(eventsMsg)
	if !ok {
		return eventsMsg{}, fmt.Errorf("serve: journal record is not an event batch")
	}
	return ev, nil
}
