package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"datalife/internal/iotrace"
)

// ClientConfig shapes the client's retry envelope.
type ClientConfig struct {
	// Addr is the server address (host:port). Required.
	Addr string
	// Session names the stream; reconnecting with the same name resumes it.
	Session string
	// MaxAttempts bounds dial/send attempts per operation (including the
	// first). Default 8.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up to
	// MaxBackoff. The schedule is deterministic (no jitter) so tests and
	// reproductions see identical timing decisions. Defaults 50ms / 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DialTimeout bounds each dial. Default 5s.
	DialTimeout time.Duration
	// MaxFrame bounds accepted reply frames. Default DefaultMaxFrame.
	MaxFrame int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// Client is a resumable stream to a serve.Server. It is not safe for
// concurrent use; one goroutine owns a client.
//
// Durability contract: Send returns only after the server acknowledged the
// batch as journaled and fsynced. On any transport failure the client
// reconnects, learns the server's durable sequence number from the welcome,
// and resends from there — the server deduplicates by sequence number, so
// crash/retry cannot double-apply events.
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	br   *bufio.Reader

	// nextSeq is the sequence number of the next event to send; durable is
	// the server-acknowledged journal frontier.
	nextSeq uint64
	durable uint64
	// Resumed reports whether the last successful handshake attached to
	// pre-existing journaled state.
	Resumed bool
}

// Dial connects and handshakes, retrying with capped exponential backoff on
// transient failures (including typed retryable rejections).
func Dial(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" || cfg.Session == "" {
		return nil, fmt.Errorf("serve: client needs Addr and Session")
	}
	c := &Client{cfg: cfg}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials and handshakes under the retry schedule, updating nextSeq to
// the server's durable frontier.
func (c *Client) connect() error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoffSleep(c.cfg, attempt-1)
		}
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		br := bufio.NewReader(conn)
		if err := writeFrame(conn, encodeHello(helloMsg{
			Version: ProtoVersion, Session: c.cfg.Session,
		})); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		payload, err := readFrame(br, c.cfg.MaxFrame)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		msg, err := decodeMessage(payload)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		switch m := msg.(type) {
		case welcomeMsg:
			c.conn, c.br = conn, br
			c.durable = m.NextSeq
			c.nextSeq = m.NextSeq
			c.Resumed = m.Resumed
			return nil
		case rejectMsg:
			conn.Close()
			lastErr = rejectError(c.cfg.Session, m)
			if !m.Retryable {
				return lastErr
			}
		default:
			conn.Close()
			lastErr = fmt.Errorf("serve: unexpected handshake reply %T", m)
		}
	}
	return fmt.Errorf("serve: connect %q failed after %d attempts: %w",
		c.cfg.Addr, c.cfg.MaxAttempts, lastErr)
}

// rejectError converts a wire rejection into the typed error clients match
// with errors.Is.
func rejectError(session string, m rejectMsg) error {
	return &SessionError{Session: session, Seq: m.Seq, Kind: m.Kind,
		Cause: fmt.Errorf("%s", m.Detail)}
}

// NextSeq returns the sequence number the next Send will start at.
func (c *Client) NextSeq() uint64 { return c.nextSeq }

// Durable returns the server-acknowledged journal frontier.
func (c *Client) Durable() uint64 { return c.durable }

// Send streams one batch of events and waits for the durable acknowledgement,
// retrying through overloads (typed backoff) and transport failures
// (reconnect + resume). Events already covered by the server's journal are
// skipped client-side; the server deduplicates any residual overlap.
func (c *Client) Send(events []iotrace.TraceEvent) error {
	first := c.nextSeq
	end := first + uint64(len(events))
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoffSleep(c.cfg, attempt-1)
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return err
			}
		}
		// Resume point may have moved past part (or all) of this batch.
		if c.nextSeq >= end {
			return nil
		}
		batch := eventsMsg{FirstSeq: c.nextSeq, Events: events[c.nextSeq-first:]}
		if err := writeFrame(c.conn, encodeEvents(batch)); err != nil {
			c.dropConn()
			lastErr = err
			continue
		}
		reply, err := c.readReply()
		if err != nil {
			c.dropConn()
			lastErr = err
			continue
		}
		switch m := reply.(type) {
		case ackMsg:
			c.durable = m.Durable
			c.nextSeq = m.Durable
			if c.nextSeq >= end {
				return nil
			}
			lastErr = fmt.Errorf("serve: short ack at %d, want %d", m.Durable, end)
		case rejectMsg:
			lastErr = rejectError(c.cfg.Session, m)
			if m.Kind == KindOverloaded {
				// Connection stays usable; back off and resend.
				continue
			}
			c.dropConn()
			if !m.Retryable {
				return lastErr
			}
		default:
			c.dropConn()
			lastErr = fmt.Errorf("serve: unexpected reply %T to events", m)
		}
	}
	return fmt.Errorf("serve: send failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// Query asks the server for an analysis answer. kind is one of "summary",
// "cpa", "advisor", "patterns"; top limits listed items. minSeq > 0 demands
// the answer reflect at least that many applied events (pass NextSeq() after
// the final Send for a fully fresh, deterministic answer).
func (c *Client) Query(kind string, top int, minSeq uint64) (Result, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			backoffSleep(c.cfg, attempt-1)
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				return Result{}, err
			}
		}
		if err := writeFrame(c.conn, encodeQuery(queryMsg{
			Kind: kind, Top: uint64(top), MinSeq: minSeq,
		})); err != nil {
			c.dropConn()
			lastErr = err
			continue
		}
		reply, err := c.readReply()
		if err != nil {
			c.dropConn()
			lastErr = err
			continue
		}
		switch m := reply.(type) {
		case resultMsg:
			res := Result{Applied: m.Applied, Synced: m.Synced, Stale: m.Stale, Body: m.Body}
			if m.Err != "" {
				return res, fmt.Errorf("serve: query %q: %s", kind, m.Err)
			}
			return res, nil
		case rejectMsg:
			lastErr = rejectError(c.cfg.Session, m)
			c.dropConn()
			if !m.Retryable {
				return Result{}, lastErr
			}
		default:
			c.dropConn()
			lastErr = fmt.Errorf("serve: unexpected reply %T to query", m)
		}
	}
	return Result{}, fmt.Errorf("serve: query failed after %d attempts: %w",
		c.cfg.MaxAttempts, lastErr)
}

// Result is one query answer plus its freshness coordinates.
type Result struct {
	Applied uint64
	Synced  uint64
	Stale   bool
	Body    string
}

// Close sends a polite bye and drops the connection. Session state persists
// server-side; a later Dial with the same session name resumes it.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	_ = writeFrame(c.conn, encodeBye())
	err := c.conn.Close()
	c.conn, c.br = nil, nil
	return err
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br = nil, nil
	}
}

func (c *Client) readReply() (any, error) {
	payload, err := readFrame(c.br, c.cfg.MaxFrame)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("serve: connection closed awaiting reply")
		}
		return nil, err
	}
	return decodeMessage(payload)
}

// backoffSleep waits the capped exponential delay for a retry attempt
// (attempt 0 = first retry). Deterministic: no jitter, so identical failure
// sequences produce identical schedules.
//
//dflvet:allow walltime retry backoff is real-time by definition
func backoffSleep(cfg ClientConfig, attempt int) {
	d := cfg.BaseBackoff << uint(attempt)
	if d > cfg.MaxBackoff || d <= 0 {
		d = cfg.MaxBackoff
	}
	time.Sleep(d)
}
