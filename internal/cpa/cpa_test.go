package cpa

import (
	"testing"

	"datalife/internal/dfl"
)

// diamond builds:
//
//	src -> a.dat -> mid1 -> b.dat -> sink
//	src -> c.dat -> mid2 -> d.dat -> sink
//
// with the top branch carrying volume 100 per edge and the bottom 10.
func diamond(t *testing.T) *dfl.Graph {
	t.Helper()
	g := dfl.New()
	add := func(src, dst dfl.ID, kind dfl.EdgeKind, vol uint64) {
		t.Helper()
		if _, err := g.AddEdge(src, dst, kind, dfl.FlowProps{Volume: vol, Latency: float64(vol) / 100}); err != nil {
			t.Fatal(err)
		}
	}
	add(dfl.TaskID("src"), dfl.DataID("a.dat"), dfl.Producer, 100)
	add(dfl.DataID("a.dat"), dfl.TaskID("mid1"), dfl.Consumer, 100)
	add(dfl.TaskID("mid1"), dfl.DataID("b.dat"), dfl.Producer, 100)
	add(dfl.DataID("b.dat"), dfl.TaskID("sink"), dfl.Consumer, 100)
	add(dfl.TaskID("src"), dfl.DataID("c.dat"), dfl.Producer, 10)
	add(dfl.DataID("c.dat"), dfl.TaskID("mid2"), dfl.Consumer, 10)
	add(dfl.TaskID("mid2"), dfl.DataID("d.dat"), dfl.Producer, 10)
	add(dfl.DataID("d.dat"), dfl.TaskID("sink"), dfl.Consumer, 10)
	return g
}

func TestCriticalPathByVolume(t *testing.T) {
	g := diamond(t)
	p, err := CriticalPath(g, ByVolume, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight != 400 {
		t.Fatalf("weight = %v, want 400", p.Weight)
	}
	want := []dfl.ID{dfl.TaskID("src"), dfl.DataID("a.dat"), dfl.TaskID("mid1"),
		dfl.DataID("b.dat"), dfl.TaskID("sink")}
	if len(p.Vertices) != len(want) {
		t.Fatalf("path = %v", p.Vertices)
	}
	for i := range want {
		if p.Vertices[i] != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, p.Vertices[i], want[i])
		}
	}
	if !p.Contains(dfl.TaskID("mid1")) || p.Contains(dfl.TaskID("mid2")) {
		t.Fatal("Contains wrong")
	}
}

func TestCriticalPathByTaskTime(t *testing.T) {
	g := diamond(t)
	g.Vertex(dfl.TaskID("mid2")).Task.Lifetime = 1000 // slow bottom task
	p, err := CriticalPath(g, nil, ByTaskTime)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(dfl.TaskID("mid2")) {
		t.Fatalf("time-weighted path should route through mid2: %v", p.Vertices)
	}
}

func TestCriticalPathByLatency(t *testing.T) {
	g := diamond(t)
	p, err := CriticalPath(g, ByLatency, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(dfl.TaskID("mid1")) {
		t.Fatalf("latency path should use top branch: %v", p.Vertices)
	}
}

func TestCriticalPathCycleError(t *testing.T) {
	g := dfl.New()
	g.AddEdge(dfl.TaskID("t"), dfl.DataID("d"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("d"), dfl.TaskID("t"), dfl.Consumer, dfl.FlowProps{})
	if _, err := CriticalPath(g, ByVolume, nil); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	if _, err := CriticalPath(dfl.New(), ByVolume, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestNearCriticalPaths(t *testing.T) {
	g := dfl.New()
	// Two independent chains with different sink weights.
	g.AddEdge(dfl.TaskID("a"), dfl.DataID("x"), dfl.Producer, dfl.FlowProps{Volume: 100})
	g.AddEdge(dfl.TaskID("b"), dfl.DataID("y"), dfl.Producer, dfl.FlowProps{Volume: 50})
	paths, err := NearCriticalPaths(g, ByVolume, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if paths[0].Weight != 100 || paths[1].Weight != 50 {
		t.Fatalf("weights = %v, %v", paths[0].Weight, paths[1].Weight)
	}
}

func TestByBranchJoinWeights(t *testing.T) {
	g := dfl.New()
	d := dfl.DataID("shared")
	g.AddEdge(dfl.TaskID("p"), d, dfl.Producer, dfl.FlowProps{})
	g.AddEdge(d, dfl.TaskID("c1"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(d, dfl.TaskID("c2"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.TaskID("c1"), dfl.DataID("o1"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.TaskID("c2"), dfl.DataID("o2"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("o1"), dfl.TaskID("join"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("o2"), dfl.TaskID("join"), dfl.Consumer, dfl.FlowProps{})

	if w := ByBranchJoin(g, g.Vertex(d)); w != 1 {
		t.Errorf("branch weight = %v", w)
	}
	if w := ByBranchJoin(g, g.Vertex(dfl.TaskID("join"))); w != 1 {
		t.Errorf("join weight = %v", w)
	}
	if w := ByBranchJoin(g, g.Vertex(dfl.TaskID("c1"))); w != 0 {
		t.Errorf("regular task weight = %v", w)
	}
	if w := ByTaskFanIn(g, g.Vertex(dfl.TaskID("join"))); w != 1 {
		t.Errorf("fan-in weight = %v", w)
	}
	if w := ByTaskFanIn(g, g.Vertex(d)); w != 0 {
		t.Errorf("fan-in on data = %v", w)
	}

	p, err := CriticalPath(g, nil, ByBranchJoin)
	if err != nil {
		t.Fatal(err)
	}
	if p.Weight != 2 { // one branch + one join along any full path
		t.Fatalf("branch/join path weight = %v, want 2", p.Weight)
	}
	br, jn := BranchJoinCount(g, p)
	if br != 1 || jn != 1 {
		t.Fatalf("BranchJoinCount = %d,%d", br, jn)
	}
}

func TestDFLCaterpillar(t *testing.T) {
	g := diamond(t)
	// Add a data leaf feeding mid1 whose producer is two hops from the path:
	// extra data vertex "cfg" consumed by mid1, produced by task "gen".
	g.AddEdge(dfl.TaskID("gen"), dfl.DataID("cfg"), dfl.Producer, dfl.FlowProps{Volume: 1})
	g.AddEdge(dfl.DataID("cfg"), dfl.TaskID("mid1"), dfl.Consumer, dfl.FlowProps{Volume: 1})

	p, err := CriticalPath(g, ByVolume, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := DFLCaterpillar(g, p)
	if !c.Contains(dfl.DataID("cfg")) {
		t.Fatal("distance-1 data leg missing")
	}
	// DFL rule: cfg's producer "gen" (distance 2) must be included.
	if !c.Contains(dfl.TaskID("gen")) {
		t.Fatal("distance-2 producer not pulled in by DFL rule")
	}
	found := false
	for _, id := range c.Extended {
		if id == dfl.TaskID("gen") {
			found = true
		}
	}
	if !found {
		t.Fatal("gen not classified as Extended")
	}
	if !c.IsCaterpillarTree(g) {
		t.Fatal("caterpillar invariant violated")
	}
	if c.Size() != len(c.Spine.Vertices)+len(c.Legs)+len(c.Extended) {
		t.Fatalf("Size = %d, parts = %d+%d+%d", c.Size(),
			len(c.Spine.Vertices), len(c.Legs), len(c.Extended))
	}
	if len(c.Members()) != c.Size() {
		t.Fatal("Members length mismatch")
	}
}

func TestCaterpillarSubgraph(t *testing.T) {
	g := diamond(t)
	p, _ := CriticalPath(g, ByVolume, nil)
	c := DFLCaterpillar(g, p)
	sub := c.Subgraph(g)
	if sub.NumVertices() != c.Size() {
		t.Fatalf("subgraph V = %d, want %d", sub.NumVertices(), c.Size())
	}
	// Every subgraph edge must connect members and keep its properties.
	for _, e := range sub.Edges() {
		if !c.Contains(e.Src) || !c.Contains(e.Dst) {
			t.Fatalf("edge %v→%v leaves caterpillar", e.Src, e.Dst)
		}
		orig := g.FindEdge(e.Src, e.Dst)
		if orig == nil || orig.Props.Volume != e.Props.Volume {
			t.Fatal("edge properties lost")
		}
	}
	// The whole diamond is within distance 1 of the spine here, so the
	// subgraph keeps all edges of g.
	if sub.NumEdges() != g.NumEdges() {
		t.Fatalf("subgraph E = %d, want %d", sub.NumEdges(), g.NumEdges())
	}
}

func TestPathEdgesAndVolume(t *testing.T) {
	g := diamond(t)
	p, _ := CriticalPath(g, ByVolume, nil)
	edges := PathEdges(g, p)
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	if PathVolume(g, p) != 400 {
		t.Fatalf("PathVolume = %d", PathVolume(g, p))
	}
}

func TestSlack(t *testing.T) {
	g := diamond(t)
	slack, err := Slack(g, ByVolume, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []dfl.ID{dfl.TaskID("src"), dfl.TaskID("mid1"), dfl.TaskID("sink")} {
		if slack[id] != 0 {
			t.Errorf("critical vertex %v has slack %v", id, slack[id])
		}
	}
	if slack[dfl.TaskID("mid2")] != 360 { // 400 - 40
		t.Errorf("mid2 slack = %v, want 360", slack[dfl.TaskID("mid2")])
	}
	if _, err := Slack(cyclic(), ByVolume, nil); err == nil {
		t.Fatal("Slack accepted cycle")
	}
}

func cyclic() *dfl.Graph {
	g := dfl.New()
	g.AddEdge(dfl.TaskID("t"), dfl.DataID("d"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("d"), dfl.TaskID("t"), dfl.Consumer, dfl.FlowProps{})
	return g
}

func TestByRateDeficit(t *testing.T) {
	g := dfl.New()
	// fast: 100B at rate 100B/s; slow: 100B at rate 10B/s.
	g.AddEdge(dfl.TaskID("a"), dfl.DataID("fast"), dfl.Producer, dfl.FlowProps{Volume: 100, Latency: 1})
	g.AddEdge(dfl.TaskID("b"), dfl.DataID("slow"), dfl.Producer, dfl.FlowProps{Volume: 100, Latency: 10})
	fast := g.FindEdge(dfl.TaskID("a"), dfl.DataID("fast"))
	slow := g.FindEdge(dfl.TaskID("b"), dfl.DataID("slow"))
	wf, ws := ByRateDeficit(g, fast), ByRateDeficit(g, slow)
	if ws <= wf {
		t.Fatalf("slow flow should outweigh fast: %v vs %v", ws, wf)
	}
	zero := &dfl.Edge{Props: dfl.FlowProps{}}
	if ByRateDeficit(g, zero) != 0 {
		t.Fatal("zero-rate edge should weigh 0")
	}
}

func TestLinearScalingSmoke(t *testing.T) {
	// The analysis must be linear-ish; as a smoke check, a 10x larger chain
	// must still complete instantly and produce the full-length path.
	for _, n := range []int{100, 1000} {
		g := dfl.New()
		for i := 0; i < n; i++ {
			task := dfl.TaskID(taskName(i))
			data := dfl.DataID(dataName(i))
			g.AddEdge(task, data, dfl.Producer, dfl.FlowProps{Volume: 1})
			if i+1 < n {
				g.AddEdge(data, dfl.TaskID(taskName(i+1)), dfl.Consumer, dfl.FlowProps{Volume: 1})
			}
		}
		p, err := CriticalPath(g, ByVolume, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Vertices) != 2*n {
			t.Fatalf("n=%d: path len = %d, want %d", n, len(p.Vertices), 2*n)
		}
	}
}

func taskName(i int) string { return "t" + itoa(i) }
func dataName(i int) string { return "d" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestGroupedBranchJoin(t *testing.T) {
	g := dfl.New()
	// columns consumed by two indiv instances (branch); each indiv joins two
	// inputs; merge joins both outputs.
	g.AddEdge(dfl.DataID("columns"), dfl.TaskID("indiv#0"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("columns"), dfl.TaskID("indiv#1"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("chr"), dfl.TaskID("indiv#0"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("chr"), dfl.TaskID("indiv#1"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.TaskID("indiv#0"), dfl.DataID("o0"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.TaskID("indiv#1"), dfl.DataID("o1"), dfl.Producer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("o0"), dfl.TaskID("merge"), dfl.Consumer, dfl.FlowProps{})
	g.AddEdge(dfl.DataID("o1"), dfl.TaskID("merge"), dfl.Consumer, dfl.FlowProps{})
	br, jn := GroupedBranchJoin(g, nil)
	if br != 2 { // columns and chr both feed two tasks
		t.Errorf("branches = %d, want 2", br)
	}
	if jn != 2 { // indiv (template of #0/#1) and merge
		t.Errorf("joins = %d, want 2", jn)
	}
}

func TestBottlenecks(t *testing.T) {
	g := diamond(t)
	all, err := Bottlenecks(g, ByVolume, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumVertices() {
		t.Fatalf("bottlenecks = %d", len(all))
	}
	// Lowest slack first; critical vertices lead with slack 0.
	if all[0].Slack != 0 {
		t.Fatalf("top slack = %v", all[0].Slack)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Slack < all[i-1].Slack {
			t.Fatal("not sorted by slack")
		}
	}
	// Kind filter + k limit.
	taskKind := dfl.TaskVertex
	tasks, err := Bottlenecks(g, ByVolume, nil, 2, &taskKind)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("k limit: %d", len(tasks))
	}
	for _, b := range tasks {
		if b.ID.Kind != dfl.TaskVertex {
			t.Fatalf("kind filter leaked %v", b.ID)
		}
	}
	if _, err := Bottlenecks(cyclic(), ByVolume, nil, 0, nil); err == nil {
		t.Fatal("cycle accepted")
	}
}
