package cpa_test

import (
	"fmt"

	"datalife/internal/cpa"
	"datalife/internal/dfl"
)

// Example runs generalized critical path analysis and builds the DFL
// caterpillar on a tiny pipeline.
func Example() {
	g := dfl.New()
	g.AddEdge(dfl.TaskID("gen"), dfl.DataID("a"), dfl.Producer, dfl.FlowProps{Volume: 100})
	g.AddEdge(dfl.DataID("a"), dfl.TaskID("proc"), dfl.Consumer, dfl.FlowProps{Volume: 100})
	g.AddEdge(dfl.TaskID("proc"), dfl.DataID("b"), dfl.Producer, dfl.FlowProps{Volume: 50})
	g.AddEdge(dfl.DataID("b"), dfl.TaskID("sink"), dfl.Consumer, dfl.FlowProps{Volume: 50})
	// A side input whose producer sits two hops off the path: the DFL
	// caterpillar rule pulls it in.
	g.AddEdge(dfl.TaskID("cfggen"), dfl.DataID("cfg"), dfl.Producer, dfl.FlowProps{Volume: 1})
	g.AddEdge(dfl.DataID("cfg"), dfl.TaskID("proc"), dfl.Consumer, dfl.FlowProps{Volume: 1})

	path, _ := cpa.CriticalPath(g, cpa.ByVolume, nil)
	cat := cpa.DFLCaterpillar(g, path)
	fmt.Printf("spine length: %d (weight %.0f)\n", len(path.Vertices), path.Weight)
	fmt.Printf("caterpillar: %d legs, %d extended producers\n",
		len(cat.Legs), len(cat.Extended))
	fmt.Printf("includes off-path producer: %v\n", cat.Contains(dfl.TaskID("cfggen")))
	// Output:
	// spine length: 5 (weight 300)
	// caterpillar: 1 legs, 1 extended producers
	// includes off-path producer: true
}
