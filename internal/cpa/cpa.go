// Package cpa implements the generalized critical path analysis (GCPA) and
// DFL caterpillar trees of §5.1 of the DataLife paper.
//
// A critical path is the longest path in the DFL-DAG under a pluggable
// property weight; by swapping the property (time, volume, footprint, flow
// rate, branch/join instances) the path focuses on different bottleneck
// classes (compute, transfer volume, storage capacity, transfer speed,
// coordination). The caterpillar tree widens the path to distance-one
// vertices; the DFL caterpillar additionally pulls in distance-two producer
// tasks of data leaves so producer-consumer relations are never severed.
//
// All algorithms are linear in vertices and edges, matching the paper's
// efficiency claim.
package cpa

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"datalife/internal/dfl"
)

// EdgeWeight scores an edge for GCPA.
type EdgeWeight func(g *dfl.Graph, e *dfl.Edge) float64

// VertexWeight scores a vertex for GCPA.
type VertexWeight func(g *dfl.Graph, v *dfl.Vertex) float64

// ByVolume weights edges by flow volume (bytes), the paper's default for
// DDMD, Belle II and Montage.
func ByVolume(_ *dfl.Graph, e *dfl.Edge) float64 { return float64(e.Props.Volume) }

// ByFootprint weights edges by unique bytes, surfacing storage-capacity
// bottlenecks.
func ByFootprint(_ *dfl.Graph, e *dfl.Edge) float64 { return float64(e.Props.Footprint) }

// ByLatency weights edges by blocking time, surfacing transfer-speed
// bottlenecks.
func ByLatency(_ *dfl.Graph, e *dfl.Edge) float64 { return e.Props.Latency }

// ByRateDeficit weights edges by volume divided by achieved rate relative to
// the graph's best rate — slow flows carrying much data score high. The best
// rate is the graph's cached aggregate (dfl.Graph.BestRate), computed once
// per graph generation rather than rescanned per edge, which keeps GCPA under
// this weight linear instead of O(E²).
func ByRateDeficit(g *dfl.Graph, e *dfl.Edge) float64 {
	best := g.BestRate()
	r := e.Props.Rate()
	if best == 0 || r == 0 {
		return 0
	}
	return float64(e.Props.Volume) * (best / r)
}

// ByTaskTime weights task vertices by lifetime — classic critical path.
func ByTaskTime(_ *dfl.Graph, v *dfl.Vertex) float64 {
	if v.ID.Kind == dfl.TaskVertex {
		return v.Task.Lifetime
	}
	return 0
}

// ByBranchJoin counts branch/join instances: a data vertex with fan-out of
// two or more (a data branch) or a task vertex with fan-in of two or more (a
// task join) scores one. This is the weighting the paper uses for the 1000
// Genomes critical path (Fig. 2a, Fig. 5).
func ByBranchJoin(g *dfl.Graph, v *dfl.Vertex) float64 {
	switch v.ID.Kind {
	case dfl.DataVertex:
		if g.OutDegree(v.ID) >= 2 {
			return 1
		}
	case dfl.TaskVertex:
		if g.InDegree(v.ID) >= 2 {
			return 1
		}
	}
	return 0
}

// ByTaskFanIn counts task joins only — the paper's weighting for Seismic
// Cross Correlation (Fig. 2e).
func ByTaskFanIn(g *dfl.Graph, v *dfl.Vertex) float64 {
	if v.ID.Kind == dfl.TaskVertex && g.InDegree(v.ID) >= 2 {
		return 1
	}
	return 0
}

// Zero is the no-op weight for the unused half of a GCPA query.
func Zero[T any](*dfl.Graph, T) float64 { return 0 }

// ZeroEdge ignores edges.
func ZeroEdge(*dfl.Graph, *dfl.Edge) float64 { return 0 }

// ZeroVertex ignores vertices.
func ZeroVertex(*dfl.Graph, *dfl.Vertex) float64 { return 0 }

// Path is a critical (or near-critical) path with its accumulated weight.
type Path struct {
	Vertices []dfl.ID
	Weight   float64
}

// Contains reports whether id lies on the path.
func (p Path) Contains(id dfl.ID) bool {
	for _, v := range p.Vertices {
		if v == id {
			return true
		}
	}
	return false
}

// CriticalPath computes the maximum-weight source-to-sink path under the
// given edge and vertex weights via one topological dynamic program — O(V+E).
// Either weight may be nil to ignore that component.
func CriticalPath(g *dfl.Graph, ew EdgeWeight, vw VertexWeight) (Path, error) {
	dp, err := solvePaths(g, ew, vw)
	if err != nil {
		return Path{}, err
	}
	if dp == nil || len(dp.sinks) == 0 {
		return Path{}, fmt.Errorf("cpa: empty graph")
	}
	return dp.path(0), nil
}

// NearCriticalPaths returns up to k maximal paths ranked by weight, one per
// distinct sink — the paper's "critical and near-critical" caterpillar
// candidates. Only the k requested paths are materialized; enumeration stops
// at the requested rank.
func NearCriticalPaths(g *dfl.Graph, ew EdgeWeight, vw VertexWeight, k int) ([]Path, error) {
	dp, err := solvePaths(g, ew, vw)
	if err != nil || dp == nil {
		return nil, err
	}
	if k > len(dp.sinks) {
		k = len(dp.sinks)
	}
	out := make([]Path, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, dp.path(i))
	}
	return out, nil
}

// ForEachNearCriticalPath streams the ranked maximal paths (one per sink,
// heaviest first) to yield, reconstructing each path only when it is asked
// for; returning false stops the enumeration. Callers that consume a prefix
// of unknown length — the advisor claims tasks until every task is covered —
// avoid materializing the long tail of near-critical paths this way.
func ForEachNearCriticalPath(g *dfl.Graph, ew EdgeWeight, vw VertexWeight, yield func(Path) bool) error {
	dp, err := solvePaths(g, ew, vw)
	if err != nil || dp == nil {
		return err
	}
	for i := range dp.sinks {
		if !yield(dp.path(i)) {
			return nil
		}
	}
	return nil
}

// pathDP holds one solved GCPA dynamic program over the graph's dense index:
// accumulated weights, predecessor choices, and the sinks in rank order.
type pathDP struct {
	ix    *dfl.Index
	dist  []float64
	pred  []int32 // -1 = source
	sinks []int32 // ranked by (weight desc, ID string asc)
}

// solvePaths runs the maximum-weight topological DP once — O(V+E) over the
// indexed core, with dense slices instead of per-vertex maps. A nil, nil
// return means the graph is empty.
func solvePaths(g *dfl.Graph, ew EdgeWeight, vw VertexWeight) (*pathDP, error) {
	if ew == nil {
		ew = ZeroEdge
	}
	if vw == nil {
		vw = ZeroVertex
	}
	ix := g.Index()
	order, err := ix.Topo()
	if err != nil {
		return nil, fmt.Errorf("cpa: critical path needs a DAG: %w", err)
	}
	n := ix.Len()
	if n == 0 {
		return nil, nil
	}
	dist := make([]float64, n)
	pred := make([]int32, n)
	for i := range pred {
		pred[i] = -1
	}
	for _, vi := range order {
		dist[vi] += vw(g, ix.VertexAt(vi)) // own vertex weight; dist held best-in so far
		edges, dsts := ix.Out(vi)
		for k, e := range edges {
			di := dsts[k]
			cand := dist[vi] + ew(g, e)
			if cand > dist[di] || pred[di] < 0 && cand >= dist[di] {
				dist[di] = cand
				pred[di] = vi
			}
		}
	}

	// Rank sinks (no outgoing edges) by accumulated weight.
	var sinks []int32
	for _, vi := range order {
		if ix.OutDegree(vi) == 0 {
			sinks = append(sinks, vi)
		}
	}
	sort.Slice(sinks, func(i, j int) bool {
		if dist[sinks[i]] != dist[sinks[j]] {
			return dist[sinks[i]] > dist[sinks[j]]
		}
		return ix.IDAt(sinks[i]).String() < ix.IDAt(sinks[j]).String()
	})
	return &pathDP{ix: ix, dist: dist, pred: pred, sinks: sinks}, nil
}

// path reconstructs the i-th ranked path by walking predecessors from its
// sink.
func (dp *pathDP) path(i int) Path {
	s := dp.sinks[i]
	depth := 1
	for cur := s; dp.pred[cur] >= 0; cur = dp.pred[cur] {
		depth++
	}
	vs := make([]dfl.ID, depth)
	for cur, at := s, depth-1; ; cur, at = dp.pred[cur], at-1 {
		vs[at] = dp.ix.IDAt(cur)
		if dp.pred[cur] < 0 {
			break
		}
	}
	return Path{Vertices: vs, Weight: dp.dist[s]}
}

// Caterpillar is a DFL caterpillar tree: the spine (critical path), the
// distance-one legs, and — per the paper's DFL extension — distance-two
// producer tasks attached to data-vertex legs, so that every data leaf keeps
// its producer relation.
//
// Membership is a dense bitset over the graph's indexed core, so the
// detectors' per-edge Contains checks cost one position lookup plus a bool
// index instead of hashing an ID into a set.
type Caterpillar struct {
	Spine Path
	// Legs are the distance-one vertices not on the spine, sorted.
	Legs []dfl.ID
	// Extended are the distance-two producer tasks added by the DFL rule,
	// sorted.
	Extended []dfl.ID

	ix     *dfl.Index
	member []bool              // dense membership, indexed by ix position
	extra  map[dfl.ID]struct{} // spine IDs absent from the graph (rare)
	n      int
}

// Contains reports membership of id in the full caterpillar.
func (c *Caterpillar) Contains(id dfl.ID) bool {
	if c.ix != nil {
		if p := c.ix.Pos(id); p >= 0 {
			return c.member[p]
		}
	}
	_, ok := c.extra[id]
	return ok
}

// Size returns the number of vertices in the caterpillar.
func (c *Caterpillar) Size() int { return c.n }

// Members returns all caterpillar vertices, sorted.
func (c *Caterpillar) Members() []dfl.ID {
	out := make([]dfl.ID, 0, c.n)
	for p, in := range c.member {
		if in {
			out = append(out, c.ix.IDAt(int32(p)))
		}
	}
	for id := range c.extra {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// DFLCaterpillar builds the DFL caterpillar tree around a critical path:
// every vertex within distance one of the spine, plus — when a distance-one
// vertex is a data vertex — its producer tasks at distance two (§5.1, Fig. 3b:
// a plain caterpillar would sever those producer/consumer relations because
// DFL graphs interleave two vertex types). Construction walks the CSR
// adjacency with dense indices; no per-vertex map operations.
func DFLCaterpillar(g *dfl.Graph, spine Path) *Caterpillar {
	ix := g.Index()
	c := &Caterpillar{Spine: spine, ix: ix, member: make([]bool, ix.Len())}
	add := func(p int32) bool {
		if c.member[p] {
			return false
		}
		c.member[p] = true
		c.n++
		return true
	}
	spinePos := make([]int32, 0, len(spine.Vertices))
	for _, id := range spine.Vertices {
		p := ix.Pos(id)
		if p < 0 {
			// Malformed spine vertex not in the graph: track it separately so
			// Contains/Size still see it.
			if c.extra == nil {
				c.extra = make(map[dfl.ID]struct{})
			}
			if _, dup := c.extra[id]; !dup {
				c.extra[id] = struct{}{}
				c.n++
			}
			continue
		}
		add(p)
		spinePos = append(spinePos, p)
	}
	var legs, ext []int32
	for _, p := range spinePos {
		_, dsts := ix.Out(p)
		for _, d := range dsts {
			if add(d) {
				legs = append(legs, d)
			}
		}
		_, srcs := ix.In(p)
		for _, s := range srcs {
			if add(s) {
				legs = append(legs, s)
			}
		}
	}
	// DFL extension: data-vertex legs pull in their distance-two producers.
	for _, lp := range legs {
		if ix.IDAt(lp).Kind != dfl.DataVertex {
			continue
		}
		_, srcs := ix.In(lp)
		for _, s := range srcs {
			if add(s) {
				ext = append(ext, s)
			}
		}
	}
	// Dense position order is (kind, name) order, so sorting the int32
	// positions reproduces the ID sort exactly.
	slices.Sort(legs)
	slices.Sort(ext)
	c.Legs = idsAt(ix, legs)
	c.Extended = idsAt(ix, ext)
	return c
}

func idsAt(ix *dfl.Index, pos []int32) []dfl.ID {
	if len(pos) == 0 {
		return nil
	}
	out := make([]dfl.ID, len(pos))
	for i, p := range pos {
		out[i] = ix.IDAt(p)
	}
	return out
}

// Subgraph extracts the caterpillar's induced subgraph from g, preserving
// vertex and edge properties. Useful for focused pattern analysis and
// rendering (Fig. 4).
func (c *Caterpillar) Subgraph(g *dfl.Graph) *dfl.Graph {
	sub := dfl.New()
	for _, id := range c.Members() {
		v := g.Vertex(id)
		if v == nil {
			continue
		}
		var nv *dfl.Vertex
		if id.Kind == dfl.TaskVertex {
			nv = sub.AddTask(id.Name)
		} else {
			nv = sub.AddData(id.Name)
		}
		*nv = *v
	}
	for _, e := range g.Edges() {
		if c.Contains(e.Src) && c.Contains(e.Dst) {
			if _, err := sub.AddEdge(e.Src, e.Dst, e.Kind, e.Props); err != nil {
				panic(err) // directions copied from a valid graph
			}
		}
	}
	return sub
}

// BranchJoinCount reports the number of data branches (fan-out >= 2) and task
// joins (fan-in >= 2) along a path — the statistics quoted for Fig. 5 ("five
// branches and four joins").
func BranchJoinCount(g *dfl.Graph, p Path) (branches, joins int) {
	for _, id := range p.Vertices {
		switch id.Kind {
		case dfl.DataVertex:
			if g.OutDegree(id) >= 2 {
				branches++
			}
		case dfl.TaskVertex:
			if g.InDegree(id) >= 2 {
				joins++
			}
		}
	}
	return
}

// GroupedBranchJoin counts the workflow-level branches and joins the paper
// quotes for Fig. 5: a branch is a data vertex consumed by two or more
// distinct tasks; a join is a task *template* (instances grouped by the given
// function) any of whose instances has in-degree two or more. With the
// default grouping, 1000 Genomes chr1 yields the paper's "five branches and
// four joins" (indiv, merge, freq, mutat).
func GroupedBranchJoin(g *dfl.Graph, group dfl.GroupFunc) (branches, joins int) {
	if group == nil {
		group = dfl.InstanceSuffixGroup
	}
	for _, v := range g.DataFiles() {
		if len(g.Consumers(v.ID)) >= 2 {
			branches++
		}
	}
	joined := make(map[string]struct{})
	for _, v := range g.Tasks() {
		if g.InDegree(v.ID) >= 2 {
			joined[group(dfl.TaskVertex, v.ID.Name)] = struct{}{}
		}
	}
	return branches, len(joined)
}

// IsCaterpillarTree verifies the defining property of a caterpillar: all
// member vertices lie within distance one of the spine, except DFL-extended
// producers which lie within distance two. Used by tests and as a sanity
// check on analysis output.
func (c *Caterpillar) IsCaterpillarTree(g *dfl.Graph) bool {
	onSpine := make(map[dfl.ID]struct{})
	for _, id := range c.Spine.Vertices {
		onSpine[id] = struct{}{}
	}
	distOK := func(id dfl.ID, max int) bool {
		if _, ok := onSpine[id]; ok {
			return true
		}
		// BFS outward from id over undirected adjacency up to max hops.
		frontier := []dfl.ID{id}
		seen := map[dfl.ID]struct{}{id: {}}
		for hop := 0; hop < max; hop++ {
			var next []dfl.ID
			for _, u := range frontier {
				for _, e := range g.Out(u) {
					if _, ok := onSpine[e.Dst]; ok {
						return true
					}
					if _, v := seen[e.Dst]; !v {
						seen[e.Dst] = struct{}{}
						next = append(next, e.Dst)
					}
				}
				for _, e := range g.In(u) {
					if _, ok := onSpine[e.Src]; ok {
						return true
					}
					if _, v := seen[e.Src]; !v {
						seen[e.Src] = struct{}{}
						next = append(next, e.Src)
					}
				}
			}
			frontier = next
		}
		return false
	}
	for _, id := range c.Legs {
		if !distOK(id, 1) {
			return false
		}
	}
	for _, id := range c.Extended {
		if !distOK(id, 2) {
			return false
		}
	}
	return true
}

func sortIDs(ids []dfl.ID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Kind != ids[j].Kind {
			return ids[i].Kind < ids[j].Kind
		}
		return ids[i].Name < ids[j].Name
	})
}

// PathEdges returns the edges along a path, in order. Missing edges (possible
// only on malformed paths) are skipped.
func PathEdges(g *dfl.Graph, p Path) []*dfl.Edge {
	var out []*dfl.Edge
	for i := 0; i+1 < len(p.Vertices); i++ {
		if e := g.FindEdge(p.Vertices[i], p.Vertices[i+1]); e != nil {
			out = append(out, e)
		}
	}
	return out
}

// PathVolume sums edge volumes along a path.
func PathVolume(g *dfl.Graph, p Path) uint64 {
	var v uint64
	for _, e := range PathEdges(g, p) {
		v += e.Props.Volume
	}
	return v
}

// Slack computes, for every vertex, the difference between the critical-path
// weight and the weight of the heaviest path through that vertex — zero for
// critical vertices, positive for vertices with scheduling slack. O(V+E).
func Slack(g *dfl.Graph, ew EdgeWeight, vw VertexWeight) (map[dfl.ID]float64, error) {
	if ew == nil {
		ew = ZeroEdge
	}
	if vw == nil {
		vw = ZeroVertex
	}
	ix := g.Index()
	order, err := ix.Topo()
	if err != nil {
		return nil, err
	}
	n := ix.Len()
	fwd := make([]float64, n)
	for _, vi := range order {
		fwd[vi] += vw(g, ix.VertexAt(vi))
		edges, dsts := ix.Out(vi)
		for k, e := range edges {
			if c := fwd[vi] + ew(g, e); c > fwd[dsts[k]] {
				fwd[dsts[k]] = c
			}
		}
	}
	bwd := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		vi := order[i]
		edges, dsts := ix.Out(vi)
		for k, e := range edges {
			if c := bwd[dsts[k]] + ew(g, e); c > bwd[vi] {
				bwd[vi] = c
			}
		}
	}
	var best float64 = math.Inf(-1)
	for _, vi := range order {
		if t := fwd[vi] + bwd[vi]; t > best {
			best = t
		}
	}
	slack := make(map[dfl.ID]float64, n)
	for _, vi := range order {
		slack[ix.IDAt(vi)] = best - (fwd[vi] + bwd[vi])
	}
	return slack, nil
}

// Bottleneck is one vertex ranked by how tightly it sits on the critical
// structure: zero slack means it is on a critical path.
type Bottleneck struct {
	ID    dfl.ID
	Slack float64
}

// Bottlenecks returns the k lowest-slack vertices of the given kind (or all
// kinds when kind is nil) — the attribution view "which tasks/files gate the
// workflow", derived from the same O(V+E) pass as Slack.
func Bottlenecks(g *dfl.Graph, ew EdgeWeight, vw VertexWeight, k int, kind *dfl.VertexKind) ([]Bottleneck, error) {
	slack, err := Slack(g, ew, vw)
	if err != nil {
		return nil, err
	}
	out := make([]Bottleneck, 0, len(slack))
	for id, s := range slack {
		if kind != nil && id.Kind != *kind {
			continue
		}
		out = append(out, Bottleneck{ID: id, Slack: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		if out[i].ID.Kind != out[j].ID.Kind {
			return out[i].ID.Kind < out[j].ID.Kind
		}
		return out[i].ID.Name < out[j].ID.Name
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}
