package cpa

import (
	"fmt"
	"math/rand"
	"testing"

	"datalife/internal/dfl"
)

// randomFanDAG builds a multi-sink DAG: a shared source fanning out into
// several producer→data→consumer chains of random depth and random volumes,
// so near-critical ranking is exercised across many sinks.
func randomFanDAG(t *testing.T, rng *rand.Rand, chains int) *dfl.Graph {
	t.Helper()
	g := dfl.New()
	src := g.AddTask("src")
	for c := 0; c < chains; c++ {
		prev := src.ID
		depth := 1 + rng.Intn(4)
		for d := 0; d < depth; d++ {
			data := dfl.DataID(fmt.Sprintf("c%02d-d%d", c, d))
			task := dfl.TaskID(fmt.Sprintf("c%02d-t%d", c, d))
			vol := uint64(1 + rng.Intn(1000))
			if _, err := g.AddEdge(prev, data, dfl.Producer, dfl.FlowProps{Volume: vol, Latency: 1}); err != nil {
				t.Fatal(err)
			}
			if _, err := g.AddEdge(data, task, dfl.Consumer, dfl.FlowProps{Volume: vol, Latency: 1}); err != nil {
				t.Fatal(err)
			}
			prev = task
		}
	}
	return g
}

func pathsEqual(a, b []Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || len(a[i].Vertices) != len(b[i].Vertices) {
			return false
		}
		for j := range a[i].Vertices {
			if a[i].Vertices[j] != b[i].Vertices[j] {
				return false
			}
		}
	}
	return true
}

// TestForEachMatchesNearCriticalPaths checks that the lazy enumeration
// yields exactly the NearCriticalPaths sequence, and that stopping early
// yields exactly its prefix.
func TestForEachMatchesNearCriticalPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomFanDAG(t, rng, 2+rng.Intn(8))
		want, err := NearCriticalPaths(g, ByVolume, nil, g.NumVertices())
		if err != nil {
			t.Fatal(err)
		}
		var got []Path
		if err := ForEachNearCriticalPath(g, ByVolume, nil, func(p Path) bool {
			got = append(got, p)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !pathsEqual(got, want) {
			t.Fatalf("trial %d: ForEach sequence differs from NearCriticalPaths", trial)
		}

		for _, k := range []int{0, 1, len(want) / 2} {
			var prefix []Path
			if err := ForEachNearCriticalPath(g, ByVolume, nil, func(p Path) bool {
				prefix = append(prefix, p)
				return len(prefix) < k
			}); err != nil {
				t.Fatal(err)
			}
			wantK := k
			if wantK == 0 {
				wantK = 1 // yield runs once before the stop signal is read
			}
			if wantK > len(want) {
				wantK = len(want)
			}
			if !pathsEqual(prefix, want[:wantK]) {
				t.Fatalf("trial %d: early-stop prefix (k=%d) differs", trial, k)
			}
		}
	}
}

// TestForEachCycleError checks the enumeration surfaces the DAG requirement
// the same way NearCriticalPaths does.
func TestForEachCycleError(t *testing.T) {
	g := cyclic()
	called := false
	err := ForEachNearCriticalPath(g, ByVolume, nil, func(Path) bool {
		called = true
		return true
	})
	if err == nil {
		t.Fatal("expected cycle error")
	}
	if called {
		t.Fatal("yield called on a cyclic graph")
	}
}
